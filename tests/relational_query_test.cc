#include "psc/relational/conjunctive_query.h"

#include "gtest/gtest.h"
#include "psc/relational/builtin.h"

namespace psc {
namespace {

Atom A(const std::string& pred, std::vector<Term> terms) {
  return Atom(pred, std::move(terms));
}
Term V(const std::string& name) { return Term::Var(name); }
Term C(int64_t v) { return Term::ConstInt(v); }
Term CS(const char* v) { return Term::ConstStr(v); }

Database ClimateDb() {
  Database db;
  db.AddFact("Station", {Value(int64_t{1}), Value(int64_t{45}),
                         Value(int64_t{-75}), Value("Canada")});
  db.AddFact("Station", {Value(int64_t{2}), Value(int64_t{40}),
                         Value(int64_t{-74}), Value("US")});
  db.AddFact("Temperature", {Value(int64_t{1}), Value(int64_t{1990}),
                             Value(int64_t{1}), Value(int64_t{-105})});
  db.AddFact("Temperature", {Value(int64_t{1}), Value(int64_t{1880}),
                             Value(int64_t{1}), Value(int64_t{-120})});
  db.AddFact("Temperature", {Value(int64_t{2}), Value(int64_t{1990}),
                             Value(int64_t{1}), Value(int64_t{30})});
  return db;
}

TEST(ConjunctiveQueryTest, CreateValidatesSafety) {
  // Head variable not in body.
  auto unsafe = ConjunctiveQuery::Create(A("V", {V("x"), V("y")}),
                                         {A("R", {V("x")})});
  EXPECT_EQ(unsafe.status().code(), StatusCode::kInvalidArgument);
  // Built-in-only variable is also unsafe (range restriction).
  auto builtin_unsafe = ConjunctiveQuery::Create(
      A("V", {V("x")}), {A("R", {V("x")}), A("After", {V("z"), C(5)})});
  EXPECT_EQ(builtin_unsafe.status().code(), StatusCode::kInvalidArgument);
}

TEST(ConjunctiveQueryTest, CreateRejectsBuiltinHead) {
  auto bad = ConjunctiveQuery::Create(A("After", {V("x"), V("y")}),
                                      {A("R", {V("x"), V("y")})});
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(ConjunctiveQueryTest, CreateRejectsBadBuiltinArity) {
  auto bad = ConjunctiveQuery::Create(
      A("V", {V("x")}), {A("R", {V("x")}), A("After", {V("x")})});
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(ConjunctiveQueryTest, CreateRejectsInconsistentArity) {
  auto bad = ConjunctiveQuery::Create(
      A("V", {V("x")}), {A("R", {V("x")}), A("R", {V("x"), V("y")})});
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(ConjunctiveQueryTest, BodyPartition) {
  auto query = ConjunctiveQuery::Create(
      A("V", {V("x")}),
      {A("R", {V("x"), V("y")}), A("After", {V("y"), C(5)}),
       A("S", {V("y")})});
  ASSERT_TRUE(query.ok());
  EXPECT_EQ(query->relational_body().size(), 2u);
  EXPECT_EQ(query->builtin_body().size(), 1u);
  EXPECT_EQ(query->RelationalBodySize(), 2u);
  EXPECT_EQ(query->Variables(), (std::set<std::string>{"x", "y"}));
}

TEST(ConjunctiveQueryTest, IdentityFactoryAndDetection) {
  const ConjunctiveQuery id = ConjunctiveQuery::Identity("R", 3, "V");
  EXPECT_TRUE(id.IsIdentity());
  EXPECT_EQ(id.head().predicate(), "V");
  EXPECT_EQ(id.head().arity(), 3u);

  // Projection is not an identity.
  auto proj = ConjunctiveQuery::Create(A("V", {V("x")}),
                                       {A("R", {V("x"), V("y")})});
  ASSERT_TRUE(proj.ok());
  EXPECT_FALSE(proj->IsIdentity());

  // Repeated variable is not an identity.
  auto repeated = ConjunctiveQuery::Create(A("V", {V("x"), V("x")}),
                                           {A("R", {V("x"), V("x")})});
  ASSERT_TRUE(repeated.ok());
  EXPECT_FALSE(repeated->IsIdentity());

  // Constant in the head is not an identity.
  auto with_const = ConjunctiveQuery::Create(A("V", {C(1), V("y")}),
                                             {A("R", {C(1), V("y")})});
  ASSERT_TRUE(with_const.ok());
  EXPECT_FALSE(with_const->IsIdentity());
}

TEST(ConjunctiveQueryTest, EvaluateSimpleScan) {
  Database db;
  db.AddFact("R", {Value(int64_t{1})});
  db.AddFact("R", {Value(int64_t{2})});
  const ConjunctiveQuery id = ConjunctiveQuery::Identity("R", 1);
  auto result = id.Evaluate(db);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 2u);
}

TEST(ConjunctiveQueryTest, EvaluateJoinWithConstantAndBuiltin) {
  // The paper's S1 view: Canadian temperatures after 1900.
  auto view = ConjunctiveQuery::Create(
      A("V1", {V("s"), V("y"), V("m"), V("v")}),
      {A("Temperature", {V("s"), V("y"), V("m"), V("v")}),
       A("Station", {V("s"), V("lat"), V("lon"), CS("Canada")}),
       A("After", {V("y"), C(1900)})});
  ASSERT_TRUE(view.ok());
  auto result = view->Evaluate(ClimateDb());
  ASSERT_TRUE(result.ok());
  // Station 1 is Canadian; only its 1990 reading passes After(y,1900).
  ASSERT_EQ(result->size(), 1u);
  EXPECT_EQ(*result->begin(),
            (Tuple{Value(int64_t{1}), Value(int64_t{1990}), Value(int64_t{1}),
                   Value(int64_t{-105})}));
}

TEST(ConjunctiveQueryTest, EvaluateRepeatedVariableJoin) {
  Database db;
  db.AddFact("E", {Value(int64_t{1}), Value(int64_t{2})});
  db.AddFact("E", {Value(int64_t{2}), Value(int64_t{2})});
  auto diagonal = ConjunctiveQuery::Create(A("V", {V("x")}),
                                           {A("E", {V("x"), V("x")})});
  ASSERT_TRUE(diagonal.ok());
  auto result = diagonal->Evaluate(db);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 1u);
  EXPECT_EQ(*result->begin(), Tuple{Value(int64_t{2})});
}

TEST(ConjunctiveQueryTest, EvaluateTwoHopJoin) {
  Database db;
  db.AddFact("E", {Value(int64_t{1}), Value(int64_t{2})});
  db.AddFact("E", {Value(int64_t{2}), Value(int64_t{3})});
  db.AddFact("E", {Value(int64_t{3}), Value(int64_t{1})});
  auto two_hop = ConjunctiveQuery::Create(
      A("V", {V("x"), V("z")}),
      {A("E", {V("x"), V("y")}), A("E", {V("y"), V("z")})});
  ASSERT_TRUE(two_hop.ok());
  auto result = two_hop->Evaluate(db);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 3u);  // 1→3, 2→1, 3→2
}

TEST(ConjunctiveQueryTest, EvaluateEmptyRelation) {
  auto query = ConjunctiveQuery::Create(A("V", {V("x")}),
                                        {A("Missing", {V("x")})});
  ASSERT_TRUE(query.ok());
  auto result = query->Evaluate(Database());
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->empty());
}

TEST(ConjunctiveQueryTest, WitnessValuations) {
  Database db;
  db.AddFact("E", {Value(int64_t{1}), Value(int64_t{2})});
  db.AddFact("E", {Value(int64_t{1}), Value(int64_t{3})});
  auto proj = ConjunctiveQuery::Create(A("V", {V("x")}),
                                       {A("E", {V("x"), V("y")})});
  ASSERT_TRUE(proj.ok());
  auto witnesses = proj->WitnessValuations(db, {Value(int64_t{1})});
  ASSERT_TRUE(witnesses.ok());
  EXPECT_EQ(witnesses->size(), 2u);  // y = 2 and y = 3
  auto none = proj->WitnessValuations(db, {Value(int64_t{9})});
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->empty());
}

TEST(ConjunctiveQueryTest, UnifyHeadWithConstants) {
  auto fixed = ConjunctiveQuery::Create(
      A("V", {C(438432), V("y")}), {A("T", {C(438432), V("y")})});
  ASSERT_TRUE(fixed.ok());
  auto match = fixed->UnifyHead({Value(int64_t{438432}), Value(int64_t{1990})});
  ASSERT_TRUE(match.ok());
  ASSERT_TRUE(match->has_value());
  EXPECT_EQ((*match)->at("y"), Value(int64_t{1990}));
  auto mismatch = fixed->UnifyHead({Value(int64_t{7}), Value(int64_t{1990})});
  ASSERT_TRUE(mismatch.ok());
  EXPECT_FALSE(mismatch->has_value());
  EXPECT_FALSE(fixed->UnifyHead({Value(int64_t{1})}).ok());  // arity error
}

TEST(ConjunctiveQueryTest, UnifyHeadRepeatedVariable) {
  auto repeated = ConjunctiveQuery::Create(A("V", {V("x"), V("x")}),
                                           {A("R", {V("x"), V("x")})});
  ASSERT_TRUE(repeated.ok());
  auto same = repeated->UnifyHead({Value(int64_t{1}), Value(int64_t{1})});
  ASSERT_TRUE(same.ok());
  EXPECT_TRUE(same->has_value());
  auto different = repeated->UnifyHead({Value(int64_t{1}), Value(int64_t{2})});
  ASSERT_TRUE(different.ok());
  EXPECT_FALSE(different->has_value());
}

TEST(ConjunctiveQueryTest, InferSchemaCollectsBodyRelations) {
  auto view = ConjunctiveQuery::Create(
      A("V", {V("x")}),
      {A("R", {V("x"), V("y")}), A("S", {V("y")}),
       A("After", {V("x"), C(0)})});
  ASSERT_TRUE(view.ok());
  Schema schema;
  ASSERT_TRUE(view->InferSchema(&schema).ok());
  EXPECT_EQ(schema.RelationNames(), (std::vector<std::string>{"R", "S"}));
  // Built-ins are not schema relations.
  EXPECT_FALSE(schema.HasRelation("After"));
}

TEST(ConjunctiveQueryTest, ToStringReadable) {
  auto view = ConjunctiveQuery::Create(
      A("V", {V("x")}), {A("R", {V("x"), C(1)}), A("After", {V("x"), C(0)})});
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->ToString(), "V(x) <- R(x, 1), After(x, 0)");
}

TEST(ConjunctiveQueryTest, ForEachValuationEarlyStop) {
  Database db;
  for (int64_t i = 0; i < 10; ++i) db.AddFact("R", {Value(i)});
  const ConjunctiveQuery id = ConjunctiveQuery::Identity("R", 1);
  int seen = 0;
  auto completed = id.ForEachValuation(db, {}, [&](const Valuation&) {
    return ++seen < 3;
  });
  ASSERT_TRUE(completed.ok());
  EXPECT_FALSE(*completed);
  EXPECT_EQ(seen, 3);
}

}  // namespace
}  // namespace psc
