#include "psc/workload/random_collections.h"

#include "gtest/gtest.h"
#include "test_util.h"

namespace psc {
namespace {

TEST(RandomCollectionTest, RespectsConfig) {
  Rng rng(1);
  RandomIdentityConfig config;
  config.num_sources = 4;
  config.universe_size = 6;
  config.min_extension = 2;
  config.max_extension = 4;
  auto collection = MakeRandomIdentityCollection(config, &rng);
  ASSERT_TRUE(collection.ok());
  EXPECT_EQ(collection->size(), 4u);
  EXPECT_TRUE(collection->AllIdentityViews());
  const Rational zero = Rational::Zero();
  const Rational one = Rational::One();
  for (const auto& source : collection->sources()) {
    EXPECT_GE(source.extension_size(), 2u);
    EXPECT_LE(source.extension_size(), 4u);
    EXPECT_GE(source.completeness_bound(), zero);
    EXPECT_LE(source.completeness_bound(), one);
    EXPECT_GE(source.soundness_bound(), zero);
    EXPECT_LE(source.soundness_bound(), one);
    for (const Tuple& tuple : source.extension()) {
      EXPECT_GE(tuple[0].AsInt(), 0);
      EXPECT_LT(tuple[0].AsInt(), 6);
    }
  }
}

TEST(RandomCollectionTest, InvalidConfigRejected) {
  Rng rng(2);
  RandomIdentityConfig config;
  config.num_sources = 0;
  EXPECT_FALSE(MakeRandomIdentityCollection(config, &rng).ok());
  RandomIdentityConfig bad_ext;
  bad_ext.min_extension = 5;
  bad_ext.max_extension = 2;
  EXPECT_FALSE(MakeRandomIdentityCollection(bad_ext, &rng).ok());
}

TEST(RandomCollectionTest, BoundGranularityQuantizes) {
  Rng rng(3);
  RandomIdentityConfig config;
  config.bound_granularity = 2;  // bounds ∈ {0, 1/2, 1}
  for (int i = 0; i < 20; ++i) {
    auto collection = MakeRandomIdentityCollection(config, &rng);
    ASSERT_TRUE(collection.ok());
    for (const auto& source : collection->sources()) {
      EXPECT_LE(source.soundness_bound().denominator(), 2);
      EXPECT_LE(source.completeness_bound().denominator(), 2);
    }
  }
}

TEST(RandomHittingSetTest, ShapeAndValidity) {
  Rng rng(4);
  for (int i = 0; i < 20; ++i) {
    const HittingSetInstance instance =
        MakeRandomHittingSet(8, 5, 3, 2, &rng);
    EXPECT_EQ(instance.universe_size, 8);
    EXPECT_EQ(instance.budget, 2);
    EXPECT_EQ(instance.subsets.size(), 5u);
    EXPECT_TRUE(instance.Validate().ok()) << instance.ToString();
    for (const auto& subset : instance.subsets) {
      EXPECT_GE(subset.size(), 1u);
      EXPECT_LE(subset.size(), 3u);
    }
  }
}

}  // namespace
}  // namespace psc
