// End-to-end: the paper's Section 1.1 climatology scenario, driven through
// the text format, the facade and the consistency/diagnostics stack.

#include "gtest/gtest.h"
#include "psc/consistency/diagnostics.h"
#include "psc/core/query_system.h"
#include "psc/parser/parser.h"
#include "psc/source/measures.h"
#include "psc/workload/ghcn.h"
#include "test_util.h"

namespace psc {
namespace {

constexpr const char* kClimatologyText = R"(
  # Station catalog (exact).
  source S0 {
    view: V0(s, lat, lon, c) <- Station(s, lat, lon, c)
    completeness: 1
    soundness: 1
    facts: V0(100, 45, -75, "Canada"), V0(200, 40, -74, "US")
  }
  # Canadian temperatures since 1900, partially sound/complete.
  source S1 {
    view: V1(s, y, m, v) <- Temperature(s, y, m, v),
                            Station(s, lat, lon, "Canada"), After(y, 1900)
    completeness: 1/2
    soundness: 1/2
    facts: V1(100, 1990, 1, -105), V1(100, 1990, 2, -80)
  }
  # Station 200's feed (exact but tiny).
  source S3 {
    view: V3(y, m, v) <- Temperature(200, y, m, v)
    completeness: 1
    soundness: 1
    facts: V3(1990, 1, 30)
  }
)";

TEST(ClimatologyIntegrationTest, ParsesAndInfersGlobalSchema) {
  auto collection = ParseCollection(kClimatologyText);
  ASSERT_TRUE(collection.ok()) << collection.status().ToString();
  EXPECT_EQ(collection->size(), 3u);
  EXPECT_TRUE(collection->schema().HasRelation("Station"));
  EXPECT_TRUE(collection->schema().HasRelation("Temperature"));
  EXPECT_EQ(*collection->schema().Arity("Temperature"), 4u);
  EXPECT_FALSE(collection->AllIdentityViews());
}

TEST(ClimatologyIntegrationTest, HandWrittenWorldSatisfiesAllSources) {
  auto collection = ParseCollection(kClimatologyText);
  ASSERT_TRUE(collection.ok());
  Database world;
  world.AddFact("Station", {Value(int64_t{100}), Value(int64_t{45}),
                            Value(int64_t{-75}), Value("Canada")});
  world.AddFact("Station", {Value(int64_t{200}), Value(int64_t{40}),
                            Value(int64_t{-74}), Value("US")});
  // Exactly S1's two claimed facts plus nothing else Canadian → S1 is
  // fully sound and fully complete, well above its 1/2 bounds.
  world.AddFact("Temperature", {Value(int64_t{100}), Value(int64_t{1990}),
                                Value(int64_t{1}), Value(int64_t{-105})});
  world.AddFact("Temperature", {Value(int64_t{100}), Value(int64_t{1990}),
                                Value(int64_t{2}), Value(int64_t{-80})});
  world.AddFact("Temperature", {Value(int64_t{200}), Value(int64_t{1990}),
                                Value(int64_t{1}), Value(int64_t{30})});
  auto possible = collection->IsPossibleWorld(world);
  ASSERT_TRUE(possible.ok());
  EXPECT_TRUE(*possible);
  // Dropping S3's only fact breaks S3's completeness/soundness pair.
  world.RemoveFact(Fact("Temperature",
                        {Value(int64_t{200}), Value(int64_t{1990}),
                         Value(int64_t{1}), Value(int64_t{30})}));
  EXPECT_FALSE(*collection->IsPossibleWorld(world));
}

TEST(ClimatologyIntegrationTest, FacadeFindsTheCollectionConsistent) {
  auto collection = ParseCollection(kClimatologyText);
  ASSERT_TRUE(collection.ok());
  auto system = QuerySystem::Create(*collection);
  ASSERT_TRUE(system.ok());
  auto report = system->CheckConsistency();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->verdict, ConsistencyVerdict::kConsistent);
  ASSERT_TRUE(report->witness.has_value());
  EXPECT_TRUE(*collection->IsPossibleWorld(*report->witness));
}

TEST(ClimatologyIntegrationTest, OverclaimingSourceIsBlamed) {
  // A fourth source claims a US temperature for a *Canadian* query view:
  // impossible to satisfy with full soundness.
  const std::string text = std::string(kClimatologyText) + R"(
    source Liar {
      view: VL(s, y, m, v) <- Temperature(s, y, m, v),
                              Station(s, lat, lon, "Atlantis")
      completeness: 0
      soundness: 1
      facts: VL(300, 1990, 1, 0)
    }
  )";
  auto collection = ParseCollection(text);
  ASSERT_TRUE(collection.ok());
  // "Atlantis" has no station in S0's exact catalog... S0 is complete, so
  // no world can invent one. The collection is inconsistent.
  GeneralConsistencyChecker checker;
  auto report = checker.Check(*collection);
  ASSERT_TRUE(report.ok());
  EXPECT_NE(report->verdict, ConsistencyVerdict::kConsistent);
}

TEST(ClimatologyIntegrationTest, SyntheticGhcnEndToEnd) {
  GhcnConfig config;
  config.num_stations = 4;
  config.start_year = 1990;
  config.end_year = 1990;
  GhcnGenerator generator(config, 42);
  const GhcnWorld world = generator.GenerateTruth();
  auto s0 = generator.MakeCatalogSource(world, "S0");
  auto s1 = generator.MakeCountrySource(world, "S1", "Canada", 1900, 0.75,
                                        0.1);
  auto s2 = generator.MakeCountrySource(world, "S2", "US", 1900, 0.5, 0.2);
  ASSERT_TRUE(s0.ok() && s1.ok() && s2.ok());
  auto collection = SourceCollection::Create({*s0, *s1, *s2});
  ASSERT_TRUE(collection.ok());
  ASSERT_TRUE(*collection->IsPossibleWorld(world.truth));
  // The parser round-trips the generated federation.
  auto reparsed = ParseCollection(collection->ToString());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(reparsed->size(), 3u);
  EXPECT_TRUE(*reparsed->IsPossibleWorld(world.truth));
}

}  // namespace
}  // namespace psc
