#include "psc/parser/parser.h"

#include "gtest/gtest.h"

namespace psc {
namespace {

TEST(ParserTest, ParseAtomMixedTerms) {
  auto atom = ParseAtom("R(x, 1900, \"Canada\")");
  ASSERT_TRUE(atom.ok());
  EXPECT_EQ(atom->predicate(), "R");
  ASSERT_EQ(atom->arity(), 3u);
  EXPECT_TRUE(atom->terms()[0].is_variable());
  EXPECT_EQ(atom->terms()[1].constant(), Value(int64_t{1900}));
  EXPECT_EQ(atom->terms()[2].constant(), Value("Canada"));
}

TEST(ParserTest, ParseAtomEmptyArgs) {
  auto atom = ParseAtom("Flag()");
  ASSERT_TRUE(atom.ok());
  EXPECT_EQ(atom->arity(), 0u);
}

TEST(ParserTest, ParseAtomErrors) {
  EXPECT_FALSE(ParseAtom("R(x").ok());
  EXPECT_FALSE(ParseAtom("R x)").ok());
  EXPECT_FALSE(ParseAtom("(x)").ok());
  EXPECT_FALSE(ParseAtom("R(x) extra").ok());
  EXPECT_FALSE(ParseAtom("R(x,)").ok());
}

TEST(ParserTest, ParseFactRequiresGround) {
  auto fact = ParseFact("R(1, \"a\")");
  ASSERT_TRUE(fact.ok());
  EXPECT_EQ(fact->relation(), "R");
  EXPECT_EQ(fact->tuple(), (Tuple{Value(int64_t{1}), Value("a")}));
  EXPECT_EQ(ParseFact("R(x)").status().code(), StatusCode::kParseError);
}

TEST(ParserTest, ParseQueryRoundTrip) {
  const std::string text =
      "V1(s, y, m, v) <- Temperature(s, y, m, v), "
      "Station(s, lat, lon, \"Canada\"), After(y, 1900)";
  auto query = ParseQuery(text);
  ASSERT_TRUE(query.ok());
  EXPECT_EQ(query->head().predicate(), "V1");
  EXPECT_EQ(query->relational_body().size(), 2u);
  EXPECT_EQ(query->builtin_body().size(), 1u);
  // ToString re-parses to an equal query.
  auto reparsed = ParseQuery(query->ToString());
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(*reparsed, *query);
}

TEST(ParserTest, ParseQueryValidationFlowsThrough) {
  // Parses syntactically but is unsafe semantically.
  EXPECT_EQ(ParseQuery("V(x, y) <- R(x)").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ParserTest, ParseQuerySyntaxErrors) {
  EXPECT_FALSE(ParseQuery("V(x)").ok());
  EXPECT_FALSE(ParseQuery("V(x) <-").ok());
  EXPECT_FALSE(ParseQuery("V(x) <- R(x),").ok());
}

TEST(ParserTest, ParseBoundForms) {
  EXPECT_EQ(*ParseBound("1"), Rational::One());
  EXPECT_EQ(*ParseBound("0.5"), Rational(1, 2));
  EXPECT_EQ(*ParseBound("3/4"), Rational(3, 4));
  EXPECT_FALSE(ParseBound("1/0").ok());
  EXPECT_FALSE(ParseBound("x").ok());
  EXPECT_FALSE(ParseBound("1/2 extra").ok());
}

constexpr const char* kSourceText = R"(
  # The paper's S1, with concrete data.
  source S1 {
    view: V1(s, y, m, v) <- Temperature(s, y, m, v),
                            Station(s, lat, lon, "Canada"), After(y, 1900)
    completeness: 0.8
    soundness: 3/4
    facts: V1(438432, 1990, 1, 125), V1(438432, 1990, 2, 130)
  }
)";

TEST(ParserTest, ParseSourceBlock) {
  auto source = ParseSource(kSourceText);
  ASSERT_TRUE(source.ok()) << source.status().ToString();
  EXPECT_EQ(source->name(), "S1");
  EXPECT_EQ(source->extension_size(), 2u);
  EXPECT_EQ(source->completeness_bound(), Rational(4, 5));
  EXPECT_EQ(source->soundness_bound(), Rational(3, 4));
  EXPECT_EQ(source->view().builtin_body().size(), 1u);
}

TEST(ParserTest, ParseSourceBareTupleFacts) {
  auto source = ParseSource(R"(
    source S {
      view: V(x) <- R(x)
      completeness: 1
      soundness: 1
      facts: (1), (2), V(3)
    }
  )");
  ASSERT_TRUE(source.ok()) << source.status().ToString();
  EXPECT_EQ(source->extension_size(), 3u);
}

TEST(ParserTest, ParseSourceFieldValidation) {
  // Missing soundness.
  EXPECT_FALSE(ParseSource(
                   "source S { view: V(x) <- R(x) completeness: 1 }")
                   .ok());
  // facts before view.
  EXPECT_FALSE(
      ParseSource("source S { facts: (1) view: V(x) <- R(x) "
                  "completeness: 1 soundness: 1 }")
          .ok());
  // Duplicate field.
  EXPECT_FALSE(ParseSource("source S { view: V(x) <- R(x) view: V(x) <- R(x) "
                           "completeness: 1 soundness: 1 }")
                   .ok());
  // Unknown field.
  EXPECT_FALSE(ParseSource("source S { view: V(x) <- R(x) completeness: 1 "
                           "soundness: 1 quality: 1 }")
                   .ok());
  // Wrong fact predicate.
  EXPECT_FALSE(ParseSource("source S { view: V(x) <- R(x) completeness: 1 "
                           "soundness: 1 facts: W(1) }")
                   .ok());
  // Out-of-range bound flows through descriptor validation.
  EXPECT_EQ(ParseSource("source S { view: V(x) <- R(x) completeness: 2 "
                        "soundness: 1 }")
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(ParserTest, ParseCollectionMultipleSources) {
  auto collection = ParseCollection(R"(
    source A {
      view: V1(x) <- R(x)
      completeness: 1/2
      soundness: 1/2
      facts: (1), (2)
    }
    source B {
      view: V2(x) <- R(x)
      completeness: 1/2
      soundness: 1/2
      facts: (2), (3)
    }
  )");
  ASSERT_TRUE(collection.ok()) << collection.status().ToString();
  EXPECT_EQ(collection->size(), 2u);
  EXPECT_TRUE(collection->AllIdentityViews());
  EXPECT_EQ(collection->TotalExtensionSize(), 4u);
}

TEST(ParserTest, ParseCollectionEmptyIsOk) {
  auto collection = ParseCollection("  # nothing here\n");
  ASSERT_TRUE(collection.ok());
  EXPECT_EQ(collection->size(), 0u);
}

TEST(ParserTest, ParseCollectionDuplicateNames) {
  auto collection = ParseCollection(R"(
    source A { view: V(x) <- R(x) completeness: 1 soundness: 1 }
    source A { view: V(x) <- R(x) completeness: 1 soundness: 1 }
  )");
  EXPECT_EQ(collection.status().code(), StatusCode::kInvalidArgument);
}

TEST(ParserTest, ErrorsReportPositions) {
  auto status = ParseSource("source S {\n  view: V(x) <- R(x)\n  bogus: 1\n}")
                    .status();
  EXPECT_EQ(status.code(), StatusCode::kParseError);
  EXPECT_NE(status.message().find("3:"), std::string::npos)
      << status.message();
}

TEST(ParserTest, DescriptorToStringReparses) {
  auto source = ParseSource(kSourceText);
  ASSERT_TRUE(source.ok());
  auto reparsed = ParseSource(source->ToString());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString()
                             << "\n" << source->ToString();
  EXPECT_EQ(reparsed->name(), source->name());
  EXPECT_EQ(reparsed->extension(), source->extension());
  EXPECT_EQ(reparsed->completeness_bound(), source->completeness_bound());
  EXPECT_EQ(reparsed->soundness_bound(), source->soundness_bound());
}

}  // namespace
}  // namespace psc
