#include "psc/consistency/general_consistency.h"

#include "gtest/gtest.h"
#include "psc/source/measures.h"
#include "test_util.h"

namespace psc {
namespace {

using testing::MakeUnaryCollection;
using testing::MakeUnarySource;

TEST(GeneralConsistencyTest, EmptyCollectionTriviallyConsistent) {
  auto empty = SourceCollection::Create({});
  ASSERT_TRUE(empty.ok());
  GeneralConsistencyChecker checker;
  auto report = checker.Check(*empty);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->verdict, ConsistencyVerdict::kConsistent);
  EXPECT_EQ(report->method, "trivial");
}

TEST(GeneralConsistencyTest, IdentityCollectionsUseTheCounter) {
  auto collection =
      MakeUnaryCollection({MakeUnarySource("S1", {0, 1}, "1/2", "1/2"),
                           MakeUnarySource("S2", {1, 2}, "1/2", "1/2")});
  GeneralConsistencyChecker checker;
  auto report = checker.Check(collection);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->verdict, ConsistencyVerdict::kConsistent);
  EXPECT_EQ(report->method, "identity-counter");
  ASSERT_TRUE(report->witness.has_value());
  EXPECT_TRUE(*collection.IsPossibleWorld(*report->witness));
}

TEST(GeneralConsistencyTest, IdentityInconsistencyDetected) {
  auto collection =
      MakeUnaryCollection({MakeUnarySource("S1", {0}, "1", "1"),
                           MakeUnarySource("S2", {1}, "1", "1")});
  GeneralConsistencyChecker checker;
  auto report = checker.Check(collection);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->verdict, ConsistencyVerdict::kInconsistent);
}

TEST(GeneralConsistencyTest, ProjectionViewConsistentViaFreeze) {
  // V(x) ← R2(x, y): a sound+complete claim on {0} is satisfiable with
  // one invented join partner.
  auto view = testing::Q("V(x) <- R2(x, y)");
  Relation extension = {testing::U(0)};
  auto source = SourceDescriptor::Create("P", view, extension,
                                         Rational::One(), Rational::One());
  ASSERT_TRUE(source.ok());
  auto collection = SourceCollection::Create({*source});
  ASSERT_TRUE(collection.ok());
  GeneralConsistencyChecker checker;
  auto report = checker.Check(*collection);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->verdict, ConsistencyVerdict::kConsistent);
  EXPECT_EQ(report->method, "canonical-freeze");
  ASSERT_TRUE(report->witness.has_value());
  EXPECT_TRUE(*collection->IsPossibleWorld(*report->witness));
}

TEST(GeneralConsistencyTest, JoinViewWithBuiltinConsistent) {
  // Head grounding makes the built-in decidable at build time.
  auto view = testing::Q("V(y) <- T(y, z), After(y, 1900)");
  Relation extension = {testing::U(1990)};
  auto source = SourceDescriptor::Create("S", view, extension,
                                         Rational::Zero(), Rational::One());
  ASSERT_TRUE(source.ok());
  auto collection = SourceCollection::Create({*source});
  ASSERT_TRUE(collection.ok());
  GeneralConsistencyChecker checker;
  auto report = checker.Check(*collection);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->verdict, ConsistencyVerdict::kConsistent);
  EXPECT_TRUE(report->witness.has_value());
}

TEST(GeneralConsistencyTest, BuiltinViolationDetectedAsInconsistent) {
  // The only claimed fact violates After(y, 1900) and the source demands
  // full soundness — no possible world exists.
  auto view = testing::Q("V(y) <- T(y, z), After(y, 1900)");
  Relation extension = {testing::U(1800)};
  auto source = SourceDescriptor::Create("S", view, extension,
                                         Rational::Zero(), Rational::One());
  ASSERT_TRUE(source.ok());
  auto collection = SourceCollection::Create({*source});
  ASSERT_TRUE(collection.ok());
  GeneralConsistencyChecker::Options options;
  options.max_fresh_constants = 2;
  options.max_exhaustive_bits = 18;
  GeneralConsistencyChecker checker(options);
  auto report = checker.Check(*collection);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  // The exhaustive pass may or may not be able to close the domain; the
  // checker must never claim kConsistent here.
  EXPECT_NE(report->verdict, ConsistencyVerdict::kConsistent)
      << report->method;
}

TEST(GeneralConsistencyTest, TwoViewsShareARelation) {
  // Source A: projection of R2 must cover {0}; source B: identity on S1
  // exact on {5}. Independent relations — consistent.
  auto view_a = testing::Q("V(x) <- R2(x, y)");
  auto source_a = SourceDescriptor::Create("A", view_a, {testing::U(0)},
                                           Rational::One(), Rational::One());
  ASSERT_TRUE(source_a.ok());
  auto view_b = testing::Q("W(x) <- S1(x)");
  auto source_b = SourceDescriptor::Create("B", view_b, {testing::U(5)},
                                           Rational::One(), Rational::One());
  ASSERT_TRUE(source_b.ok());
  auto collection = SourceCollection::Create({*source_a, *source_b});
  ASSERT_TRUE(collection.ok());
  GeneralConsistencyChecker checker;
  auto report = checker.Check(*collection);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->verdict, ConsistencyVerdict::kConsistent);
  EXPECT_TRUE(*collection->IsPossibleWorld(*report->witness));
}

TEST(GeneralConsistencyTest, ExhaustivePassProvesInconsistency) {
  // The claimed fact (1,2) can never match the head V(y,y); the freeze
  // pass produces no candidates and the canonical domain is already
  // complete (no fresh constants needed beyond the mentioned ones), so
  // the exhaustive fallback may return a definitive INCONSISTENT.
  auto view = testing::Q("V(y, y) <- T(y, y)");
  Relation extension = {Tuple{Value(int64_t{1}), Value(int64_t{2})}};
  auto source = SourceDescriptor::Create("S", view, extension,
                                         Rational::Zero(), Rational::One());
  ASSERT_TRUE(source.ok());
  auto collection = SourceCollection::Create({*source});
  ASSERT_TRUE(collection.ok());
  GeneralConsistencyChecker checker;
  auto report = checker.Check(*collection);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->verdict, ConsistencyVerdict::kInconsistent);
  EXPECT_EQ(report->method, "exhaustive");
}

TEST(GeneralConsistencyTest, ReportCountsWorkPerformed) {
  auto view = testing::Q("V(x) <- R2(x, y)");
  Relation extension = {testing::U(0), testing::U(1)};
  auto source = SourceDescriptor::Create("P", view, extension,
                                         Rational::Zero(), Rational(1, 2));
  ASSERT_TRUE(source.ok());
  auto collection = SourceCollection::Create({*source});
  ASSERT_TRUE(collection.ok());
  GeneralConsistencyChecker checker;
  auto report = checker.Check(*collection);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->verdict, ConsistencyVerdict::kConsistent);
  EXPECT_GE(report->combinations_tried, 1u);
  EXPECT_GE(report->candidates_checked, 1u);
}

TEST(GeneralConsistencyTest, VerdictToString) {
  EXPECT_STREQ(ConsistencyVerdictToString(ConsistencyVerdict::kConsistent),
               "CONSISTENT");
  EXPECT_STREQ(ConsistencyVerdictToString(ConsistencyVerdict::kInconsistent),
               "INCONSISTENT");
  EXPECT_STREQ(ConsistencyVerdictToString(ConsistencyVerdict::kUnknown),
               "UNKNOWN");
}

}  // namespace
}  // namespace psc
