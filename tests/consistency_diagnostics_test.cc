#include "psc/consistency/diagnostics.h"

#include "gtest/gtest.h"
#include "test_util.h"

namespace psc {
namespace {

using testing::MakeUnaryCollection;
using testing::MakeUnarySource;

/// S1 and S2 contradict (exact on different sets); S3 is harmless.
SourceCollection ConflictedCollection() {
  return MakeUnaryCollection({MakeUnarySource("S1", {0}, "1", "1"),
                              MakeUnarySource("S2", {1}, "1", "1"),
                              MakeUnarySource("S3", {0, 1}, "0", "0")});
}

TEST(DiagnosticsTest, BlameIdentifiesTheConflictPair) {
  GeneralConsistencyChecker checker;
  auto blames = BlameSources(ConflictedCollection(), checker);
  ASSERT_TRUE(blames.ok()) << blames.status().ToString();
  ASSERT_EQ(blames->size(), 3u);
  // Removing S1 or S2 restores consistency; removing S3 does not.
  EXPECT_EQ((*blames)[0].verdict_without, ConsistencyVerdict::kConsistent);
  EXPECT_EQ((*blames)[1].verdict_without, ConsistencyVerdict::kConsistent);
  EXPECT_EQ((*blames)[2].verdict_without, ConsistencyVerdict::kInconsistent);
  EXPECT_EQ((*blames)[2].source_name, "S3");
}

TEST(DiagnosticsTest, MaximalConsistentSubcollections) {
  GeneralConsistencyChecker checker;
  auto maximal = MaximalConsistentSubcollections(ConflictedCollection(),
                                                 checker);
  ASSERT_TRUE(maximal.ok());
  // Exactly {S1, S3} and {S2, S3}.
  ASSERT_EQ(maximal->size(), 2u);
  EXPECT_EQ((*maximal)[0], (std::vector<std::string>{"S1", "S3"}));
  EXPECT_EQ((*maximal)[1], (std::vector<std::string>{"S2", "S3"}));
}

TEST(DiagnosticsTest, ConsistentCollectionIsItsOwnMaximum) {
  auto collection =
      MakeUnaryCollection({MakeUnarySource("S1", {0, 1}, "1/2", "1/2"),
                           MakeUnarySource("S2", {1, 2}, "1/2", "1/2")});
  GeneralConsistencyChecker checker;
  auto maximal = MaximalConsistentSubcollections(collection, checker);
  ASSERT_TRUE(maximal.ok());
  ASSERT_EQ(maximal->size(), 1u);
  EXPECT_EQ((*maximal)[0], (std::vector<std::string>{"S1", "S2"}));
}

TEST(DiagnosticsTest, RelaxationOfConsistentCollectionIsOne) {
  auto collection =
      MakeUnaryCollection({MakeUnarySource("S", {0}, "1", "1")});
  GeneralConsistencyChecker checker;
  auto lambda = MaxUniformRelaxation(collection, checker);
  ASSERT_TRUE(lambda.ok());
  EXPECT_EQ(*lambda, Rational::One());
}

TEST(DiagnosticsTest, RelaxationFindsBreakingPoint) {
  // S1 exact on {0}, S2 exact on {1}: scaling both bounds by λ, the
  // collection becomes consistent once soundness/completeness thresholds
  // drop below the contradiction. With singleton extensions the soundness
  // threshold ⌈λ·1⌉ stays 1 for any λ > 0, and completeness λ ≤ 1/2
  // admits D = {0,1}. So the maximum consistent λ is 1/2.
  GeneralConsistencyChecker checker;
  auto lambda = MaxUniformRelaxation(
      MakeUnaryCollection({MakeUnarySource("S1", {0}, "1", "1"),
                           MakeUnarySource("S2", {1}, "1", "1")}),
      checker, /*precision=*/64);
  ASSERT_TRUE(lambda.ok()) << lambda.status().ToString();
  EXPECT_EQ(*lambda, Rational(1, 2));
}

TEST(DiagnosticsTest, RelaxationPrecisionValidated) {
  GeneralConsistencyChecker checker;
  EXPECT_FALSE(MaxUniformRelaxation(ConflictedCollection(), checker, 0).ok());
}

}  // namespace
}  // namespace psc
