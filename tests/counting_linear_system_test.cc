#include "psc/counting/linear_system.h"

#include "gtest/gtest.h"
#include "test_util.h"

namespace psc {
namespace {

using testing::IntDomain;
using testing::MakeUnaryCollection;
using testing::MakeUnarySource;

LinearSystem BuildSystem(const SourceCollection& collection, int64_t domain) {
  auto instance = IdentityInstance::Create(collection, IntDomain(domain));
  EXPECT_TRUE(instance.ok());
  auto system = LinearSystem::FromIdentityInstance(*instance);
  EXPECT_TRUE(system.ok());
  return std::move(system).ValueOrDie();
}

TEST(LinearSystemTest, TwoRowsPerSource) {
  const LinearSystem system = BuildSystem(
      MakeUnaryCollection({MakeUnarySource("S1", {0, 1}, "1/2", "1/2"),
                           MakeUnarySource("S2", {1, 2}, "1/2", "1/2")}),
      4);
  EXPECT_EQ(system.num_variables(), 4u);
  EXPECT_EQ(system.rows().size(), 4u);
}

TEST(LinearSystemTest, CoefficientsMatchPaperForm) {
  // One source, v = {0}, c = 1/2, universe {0,1}.
  const LinearSystem system = BuildSystem(
      MakeUnaryCollection({MakeUnarySource("S", {0}, "1/2", "1")}), 2);
  // Completeness row: (den−num)·x₀ − num·x₁ ≥ 0 → 1·x₀ − 1·x₁ ≥ 0.
  const auto& completeness = system.rows()[0];
  EXPECT_EQ(completeness.coefficients, (std::vector<int64_t>{1, -1}));
  EXPECT_EQ(completeness.rhs, 0);
  // Soundness row: x₀ ≥ 1.
  const auto& soundness = system.rows()[1];
  EXPECT_EQ(soundness.coefficients, (std::vector<int64_t>{1, 0}));
  EXPECT_EQ(soundness.rhs, 1);
}

TEST(LinearSystemTest, IsSatisfiedByEvaluatesMask) {
  const LinearSystem system = BuildSystem(
      MakeUnaryCollection({MakeUnarySource("S", {0}, "1/2", "1")}), 2);
  EXPECT_FALSE(system.IsSatisfiedBy(0b00));  // soundness fails
  EXPECT_TRUE(system.IsSatisfiedBy(0b01));   // {0}
  EXPECT_TRUE(system.IsSatisfiedBy(0b11));   // {0,1}: completeness 1/2 ok
  EXPECT_FALSE(system.IsSatisfiedBy(0b10));  // {1}: soundness fails
}

TEST(LinearSystemTest, BruteForceCountAndConditionalCounts) {
  const LinearSystem system = BuildSystem(
      MakeUnaryCollection({MakeUnarySource("S", {0}, "1/2", "1")}), 2);
  auto total = system.CountSolutionsBruteForce();
  ASSERT_TRUE(total.ok());
  EXPECT_EQ(total->ToUint64(), 2u);  // {0} and {0,1}
  auto with0 = system.CountSolutionsWithFixed(0, true);
  ASSERT_TRUE(with0.ok());
  EXPECT_EQ(with0->ToUint64(), 2u);
  auto without0 = system.CountSolutionsWithFixed(0, false);
  ASSERT_TRUE(without0.ok());
  EXPECT_TRUE(without0->IsZero());
  auto with1 = system.CountSolutionsWithFixed(1, true);
  ASSERT_TRUE(with1.ok());
  EXPECT_EQ(with1->ToUint64(), 1u);
}

TEST(LinearSystemTest, VariableLimitEnforced) {
  const LinearSystem system = BuildSystem(
      MakeUnaryCollection({MakeUnarySource("S", {0}, "1/2", "1")}), 2);
  EXPECT_EQ(system.CountSolutionsBruteForce(/*max_vars=*/1).status().code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(system.CountSolutionsWithFixed(5, true).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(LinearSystemTest, ToStringShowsRowsAndLabels) {
  const LinearSystem system = BuildSystem(
      MakeUnaryCollection({MakeUnarySource("S", {0}, "1/2", "1")}), 2);
  const std::string text = system.ToString();
  EXPECT_NE(text.find("S:completeness>=1/2"), std::string::npos) << text;
  EXPECT_NE(text.find("S:soundness>=1"), std::string::npos) << text;
  EXPECT_NE(text.find(">= 1"), std::string::npos) << text;
}

}  // namespace
}  // namespace psc
