#include "psc/relational/builtin.h"

#include "gtest/gtest.h"

namespace psc {
namespace {

Value I(int64_t v) { return Value(v); }
Value S(const char* v) { return Value(v); }

TEST(BuiltinTest, Registry) {
  EXPECT_TRUE(IsBuiltinPredicate("After"));
  EXPECT_TRUE(IsBuiltinPredicate("Before"));
  EXPECT_TRUE(IsBuiltinPredicate("Eq"));
  EXPECT_FALSE(IsBuiltinPredicate("Temperature"));
  EXPECT_FALSE(IsBuiltinPredicate("after"));  // case-sensitive
  EXPECT_EQ(BuiltinPredicateNames().size(), 8u);
  EXPECT_TRUE(std::is_sorted(BuiltinPredicateNames().begin(),
                             BuiltinPredicateNames().end()));
}

TEST(BuiltinTest, AfterIsStrictlyGreater) {
  auto yes = EvalBuiltin("After", {I(1990), I(1900)});
  ASSERT_TRUE(yes.ok());
  EXPECT_TRUE(*yes);
  auto boundary = EvalBuiltin("After", {I(1900), I(1900)});
  ASSERT_TRUE(boundary.ok());
  EXPECT_FALSE(*boundary);
  auto no = EvalBuiltin("After", {I(1800), I(1900)});
  ASSERT_TRUE(no.ok());
  EXPECT_FALSE(*no);
}

TEST(BuiltinTest, BeforeIsStrictlyLess) {
  EXPECT_TRUE(*EvalBuiltin("Before", {I(1), I(2)}));
  EXPECT_FALSE(*EvalBuiltin("Before", {I(2), I(2)}));
}

TEST(BuiltinTest, ComparisonFamily) {
  EXPECT_TRUE(*EvalBuiltin("Lt", {I(1), I(2)}));
  EXPECT_TRUE(*EvalBuiltin("Le", {I(2), I(2)}));
  EXPECT_FALSE(*EvalBuiltin("Lt", {I(2), I(2)}));
  EXPECT_TRUE(*EvalBuiltin("Gt", {I(3), I(2)}));
  EXPECT_TRUE(*EvalBuiltin("Ge", {I(2), I(2)}));
  EXPECT_TRUE(*EvalBuiltin("Eq", {I(2), I(2)}));
  EXPECT_TRUE(*EvalBuiltin("Ne", {I(2), I(3)}));
  EXPECT_FALSE(*EvalBuiltin("Ne", {I(2), I(2)}));
}

TEST(BuiltinTest, StringsCompareLexicographically) {
  EXPECT_TRUE(*EvalBuiltin("Lt", {S("Canada"), S("US")}));
  EXPECT_TRUE(*EvalBuiltin("Eq", {S("US"), S("US")}));
  EXPECT_FALSE(*EvalBuiltin("Eq", {S("US"), S("us")}));
}

TEST(BuiltinTest, MixedKindsUseTotalOrder) {
  // Integers sort before strings in the Value order; comparisons stay
  // total so evaluation over heterogeneous databases never errors.
  EXPECT_TRUE(*EvalBuiltin("Lt", {I(999999), S("a")}));
  EXPECT_TRUE(*EvalBuiltin("Gt", {S(""), I(-5)}));
  EXPECT_FALSE(*EvalBuiltin("Eq", {I(1), S("1")}));
  EXPECT_TRUE(*EvalBuiltin("Ne", {I(1), S("1")}));
}

TEST(BuiltinTest, UnknownPredicate) {
  EXPECT_EQ(EvalBuiltin("Between", {I(1), I(2)}).status().code(),
            StatusCode::kNotFound);
}

TEST(BuiltinTest, WrongArity) {
  EXPECT_EQ(EvalBuiltin("After", {I(1)}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(EvalBuiltin("After", {I(1), I(2), I(3)}).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace psc
