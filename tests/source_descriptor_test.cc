#include "psc/source/source_descriptor.h"

#include "gtest/gtest.h"
#include "test_util.h"

namespace psc {
namespace {

using testing::U;

TEST(SourceDescriptorTest, CreateValid) {
  Relation extension = {U(1), U(2)};
  auto source = SourceDescriptor::Create(
      "S1", ConjunctiveQuery::Identity("R", 1), extension, Rational(1, 2),
      Rational(3, 4));
  ASSERT_TRUE(source.ok());
  EXPECT_EQ(source->name(), "S1");
  EXPECT_EQ(source->extension_size(), 2u);
  EXPECT_EQ(source->completeness_bound(), Rational(1, 2));
  EXPECT_EQ(source->soundness_bound(), Rational(3, 4));
}

TEST(SourceDescriptorTest, BoundsOutsideUnitIntervalRejected) {
  Relation extension = {U(1)};
  EXPECT_FALSE(SourceDescriptor::Create("S", ConjunctiveQuery::Identity("R", 1),
                                        extension, Rational(3, 2),
                                        Rational(1, 2))
                   .ok());
  EXPECT_FALSE(SourceDescriptor::Create("S", ConjunctiveQuery::Identity("R", 1),
                                        extension, Rational(1, 2),
                                        Rational(-1, 2))
                   .ok());
}

TEST(SourceDescriptorTest, ExtensionArityMismatchRejected) {
  Relation extension = {Tuple{Value(int64_t{1}), Value(int64_t{2})}};
  EXPECT_EQ(SourceDescriptor::Create("S", ConjunctiveQuery::Identity("R", 1),
                                     extension, Rational::One(),
                                     Rational::One())
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(SourceDescriptorTest, MinSoundFactsUsesCeiling) {
  // |v| = 3, s = 1/2 → ⌈1.5⌉ = 2.
  auto source = testing::MakeUnarySource("S", {1, 2, 3}, "1", "1/2");
  EXPECT_EQ(source.MinSoundFacts(), 2);
  // s = 1/3 → exactly 1.
  auto exact = testing::MakeUnarySource("S", {1, 2, 3}, "1", "1/3");
  EXPECT_EQ(exact.MinSoundFacts(), 1);
  // s = 0 → 0.
  auto zero = testing::MakeUnarySource("S", {1, 2, 3}, "1", "0");
  EXPECT_EQ(zero.MinSoundFacts(), 0);
  // Empty extension → 0 regardless of s.
  auto empty = testing::MakeUnarySource("S", {}, "1", "1");
  EXPECT_EQ(empty.MinSoundFacts(), 0);
}

TEST(SourceDescriptorTest, EmptyExtensionAllowed) {
  auto source = SourceDescriptor::Create("S",
                                         ConjunctiveQuery::Identity("R", 1),
                                         Relation{}, Rational::One(),
                                         Rational::One());
  ASSERT_TRUE(source.ok());
  EXPECT_EQ(source->extension_size(), 0u);
}

TEST(SourceDescriptorTest, ToStringMentionsEveryField) {
  auto source = testing::MakeUnarySource("S9", {7}, "1/2", "1/3");
  const std::string text = source.ToString();
  EXPECT_NE(text.find("source S9"), std::string::npos);
  EXPECT_NE(text.find("view:"), std::string::npos);
  EXPECT_NE(text.find("completeness: 1/2"), std::string::npos);
  EXPECT_NE(text.find("soundness: 1/3"), std::string::npos);
  EXPECT_NE(text.find("(7)"), std::string::npos);
}

}  // namespace
}  // namespace psc
