// Randomized cross-validation: the exact identity-view consistency checker
// and the signature counter must agree with the brute-force oracle on
// hundreds of random collections.

#include "gtest/gtest.h"
#include "psc/consistency/identity_consistency.h"
#include "psc/consistency/possible_worlds.h"
#include "psc/counting/confidence.h"
#include "psc/workload/random_collections.h"
#include "test_util.h"

namespace psc {
namespace {

using testing::IntDomain;

struct PropertyCase {
  int64_t num_sources;
  int64_t universe;
  uint64_t seed;
};

class ConsistencyPropertyTest
    : public ::testing::TestWithParam<PropertyCase> {};

TEST_P(ConsistencyPropertyTest, CheckerAgreesWithBruteForceOracle) {
  const PropertyCase param = GetParam();
  Rng rng(param.seed);
  RandomIdentityConfig config;
  config.num_sources = param.num_sources;
  config.universe_size = param.universe;
  config.min_extension = 1;
  config.max_extension = param.universe;
  for (int trial = 0; trial < 40; ++trial) {
    auto collection = MakeRandomIdentityCollection(config, &rng);
    ASSERT_TRUE(collection.ok());
    auto report = CheckIdentityConsistency(*collection);
    ASSERT_TRUE(report.ok());
    BruteForceWorldEnumerator oracle(&*collection, IntDomain(param.universe));
    auto count = oracle.CountPossibleWorlds();
    ASSERT_TRUE(count.ok());
    EXPECT_EQ(report->consistent, *count > 0)
        << collection->ToString();
    if (report->consistent) {
      auto valid = collection->IsPossibleWorld(*report->witness);
      ASSERT_TRUE(valid.ok());
      EXPECT_TRUE(*valid) << collection->ToString() << "\nwitness:\n"
                          << report->witness->ToString();
    }
  }
}

TEST_P(ConsistencyPropertyTest, CounterAgreesWithBruteForceOracle) {
  const PropertyCase param = GetParam();
  Rng rng(param.seed + 1000);
  RandomIdentityConfig config;
  config.num_sources = param.num_sources;
  config.universe_size = param.universe;
  config.min_extension = 1;
  config.max_extension = param.universe;
  for (int trial = 0; trial < 25; ++trial) {
    auto collection = MakeRandomIdentityCollection(config, &rng);
    ASSERT_TRUE(collection.ok());
    auto instance =
        IdentityInstance::Create(*collection, IntDomain(param.universe));
    ASSERT_TRUE(instance.ok());
    BinomialTable binomials;
    SignatureCounter counter(&*instance, &binomials);
    auto outcome = counter.Count();
    ASSERT_TRUE(outcome.ok());
    BruteForceWorldEnumerator oracle(&*collection, IntDomain(param.universe));
    auto count = oracle.CountPossibleWorlds();
    ASSERT_TRUE(count.ok());
    EXPECT_EQ(outcome->world_count.ToUint64(), *count)
        << collection->ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ConsistencyPropertyTest,
    ::testing::Values(PropertyCase{1, 3, 11}, PropertyCase{2, 3, 22},
                      PropertyCase{2, 4, 33}, PropertyCase{3, 4, 44},
                      PropertyCase{3, 5, 55}, PropertyCase{4, 4, 66}),
    [](const ::testing::TestParamInfo<PropertyCase>& info) {
      return "n" + std::to_string(info.param.num_sources) + "u" +
             std::to_string(info.param.universe);
    });

}  // namespace
}  // namespace psc
