// Theorem 5.1: confidence_Q(t) = conf_Q(t), where conf_Q is the
// Definition 5.1 compositional computation. The proof is "by structural
// induction using standard probability laws", which requires the combined
// events to be independent. These tests verify:
//   * exact agreement on selections (σ never combines events),
//   * exact agreement on projections/products whenever the base facts are
//     genuinely independent (uniform unconstrained collections),
//   * and the *documented deviation* when events are correlated — the
//     honest caveat quantified by experiment E5.

#include "gtest/gtest.h"
#include "psc/core/query_system.h"
#include "test_util.h"

namespace psc {
namespace {

using testing::IntDomain;
using testing::MakeUnaryCollection;
using testing::MakeUnarySource;
using testing::U;

Tuple T2(int64_t a, int64_t b) { return {Value(a), Value(b)}; }

/// A source collection over the *binary* relation R2 whose bounds are 0:
/// poss(S) = all subsets of dom², every base fact an independent fair coin.
QuerySystem IndependentBinarySystem() {
  Relation extension = {T2(0, 0)};
  auto source = SourceDescriptor::Create(
      "S", ConjunctiveQuery::Identity("R2", 2), extension, Rational::Zero(),
      Rational::Zero());
  EXPECT_TRUE(source.ok());
  auto collection = SourceCollection::Create({*source});
  EXPECT_TRUE(collection.ok());
  auto system = QuerySystem::Create(*collection);
  EXPECT_TRUE(system.ok());
  return std::move(system).ValueOrDie();
}

TEST(Theorem51Test, SelectionAlwaysAgrees) {
  // Correlated worlds (Example 5.1), but σ only filters.
  auto system = QuerySystem::Create(
      MakeUnaryCollection({MakeUnarySource("S1", {0, 1}, "1/2", "1/2"),
                           MakeUnarySource("S2", {1, 2}, "1/2", "1/2")}));
  ASSERT_TRUE(system.ok());
  auto plan = AlgebraExpr::Select(
      AlgebraExpr::Base("R", 1),
      {Condition::WithConstant(0, "Le", Value(int64_t{1}))});
  const std::vector<Value> domain = IntDomain(4);
  auto exact = system->AnswerExact(plan, domain);
  auto compositional = system->AnswerCompositional(plan, domain);
  ASSERT_TRUE(exact.ok() && compositional.ok());
  EXPECT_EQ(exact->confidences.size(), compositional->confidences.size());
  for (const auto& [tuple, confidence] : exact->confidences.entries()) {
    EXPECT_NEAR(*compositional->confidences.ConfidenceOf(tuple), confidence,
                1e-12);
  }
}

TEST(Theorem51Test, ProjectionAgreesUnderIndependence) {
  const QuerySystem system = IndependentBinarySystem();
  const std::vector<Value> domain = IntDomain(2);  // 4 facts, 16 worlds
  auto plan = AlgebraExpr::Project(AlgebraExpr::Base("R2", 2), {0});
  auto exact = system.AnswerExact(plan, domain);
  auto compositional = system.AnswerCompositional(plan, domain);
  ASSERT_TRUE(exact.ok() && compositional.ok())
      << exact.status().ToString() << compositional.status().ToString();
  // conf(a) = 1 − (1/2)² = 3/4 on both sides.
  for (int64_t a = 0; a < 2; ++a) {
    EXPECT_NEAR(*exact->confidences.ConfidenceOf(U(a)), 0.75, 1e-12);
    EXPECT_NEAR(*compositional->confidences.ConfidenceOf(U(a)), 0.75, 1e-12);
  }
}

TEST(Theorem51Test, ProductAgreesOnDisjointSelections) {
  const QuerySystem system = IndependentBinarySystem();
  const std::vector<Value> domain = IntDomain(2);
  // σ(col0 = 0)(R2) × σ(col0 = 1)(R2): disjoint supports → independent.
  auto left = AlgebraExpr::Select(
      AlgebraExpr::Base("R2", 2),
      {Condition::WithConstant(0, "Eq", Value(int64_t{0}))});
  auto right = AlgebraExpr::Select(
      AlgebraExpr::Base("R2", 2),
      {Condition::WithConstant(0, "Eq", Value(int64_t{1}))});
  auto plan = AlgebraExpr::Product(left, right);
  auto exact = system.AnswerExact(plan, domain);
  auto compositional = system.AnswerCompositional(plan, domain);
  ASSERT_TRUE(exact.ok() && compositional.ok());
  for (const auto& [tuple, confidence] : exact->confidences.entries()) {
    EXPECT_NEAR(*compositional->confidences.ConfidenceOf(tuple), confidence,
                1e-12)
        << TupleToString(tuple);
  }
}

TEST(Theorem51Test, SelfProductDeviationIsTheDocumentedCaveat) {
  // Q = π₀(R × R): exactly Q(D) = R(D) whenever R(D) ≠ ∅, so the exact
  // confidence of t equals conf(t) here. The compositional computation
  // treats the two R copies as independent and overestimates. This is the
  // independence caveat of Theorem 5.1 (measured at scale by E5).
  const QuerySystem system = IndependentBinarySystem();
  const std::vector<Value> domain = IntDomain(2);
  auto plan = AlgebraExpr::Project(
      AlgebraExpr::Product(AlgebraExpr::Base("R2", 2),
                           AlgebraExpr::Base("R2", 2)),
      {0, 1});
  auto exact = system.AnswerExact(plan, domain);
  auto compositional = system.AnswerCompositional(plan, domain);
  ASSERT_TRUE(exact.ok() && compositional.ok());
  const double exact_conf = *exact->confidences.ConfidenceOf(T2(0, 0));
  const double comp_conf =
      *compositional->confidences.ConfidenceOf(T2(0, 0));
  EXPECT_NEAR(exact_conf, 0.5, 1e-12);  // = conf(R2(0,0))
  EXPECT_GT(comp_conf, exact_conf + 1e-6);
  EXPECT_LE(comp_conf, 1.0);
}

TEST(Theorem51Test, CompositionalCertainImpliesExactCertain) {
  // With an exact source, compositional confidence 1 facts are certain.
  auto system = QuerySystem::Create(
      MakeUnaryCollection({MakeUnarySource("S", {0, 1}, "1", "1")}));
  ASSERT_TRUE(system.ok());
  const std::vector<Value> domain = IntDomain(3);
  auto plan = AlgebraExpr::Base("R", 1);
  auto exact = system->AnswerExact(plan, domain);
  auto compositional = system->AnswerCompositional(plan, domain);
  ASSERT_TRUE(exact.ok() && compositional.ok());
  EXPECT_EQ(exact->certain, compositional->certain);
  EXPECT_EQ(exact->possible, compositional->possible);
}

}  // namespace
}  // namespace psc
