#include "psc/tableau/template_builder.h"

#include "gtest/gtest.h"
#include "test_util.h"

namespace psc {
namespace {

using testing::MakeUnaryCollection;
using testing::MakeUnarySource;
using testing::U;

TEST(TemplateBuilderTest, CombinationValidation) {
  auto collection =
      MakeUnaryCollection({MakeUnarySource("S", {0, 1}, "1/2", "1/2")});
  TemplateBuilder builder(&collection);
  // Wrong combination length.
  EXPECT_FALSE(builder.Build({}).ok());
  // Subset not inside the extension.
  EXPECT_FALSE(builder.Build({Relation{U(7)}}).ok());
  // Below the soundness threshold ⌈(1/2)·2⌉ = 1.
  EXPECT_FALSE(builder.Build({Relation{}}).ok());
  // Valid subset builds.
  auto built = builder.Build({Relation{U(0)}});
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  EXPECT_TRUE(built->has_value());
}

TEST(TemplateBuilderTest, IdentityTemplateShape) {
  auto collection =
      MakeUnaryCollection({MakeUnarySource("S", {0, 1}, "1/2", "1/2")});
  TemplateBuilder builder(&collection);
  auto built = builder.Build({Relation{U(0), U(1)}});
  ASSERT_TRUE(built.ok());
  ASSERT_TRUE(built->has_value());
  const DatabaseTemplate& t = **built;
  // Tableau forces u = {R(0), R(1)}.
  ASSERT_EQ(t.tableaux().size(), 1u);
  EXPECT_EQ(t.tableaux()[0].size(), 2u);
  // One cardinality constraint (c = 1/2 > 0): m = ⌊2/(1/2)⌋ = 4,
  // pattern has 5 fresh copies, Θ has 5·4 ordered pairs.
  ASSERT_EQ(t.constraints().size(), 1u);
  EXPECT_EQ(t.constraints()[0].pattern.size(), 5u);
  EXPECT_EQ(t.constraints()[0].options.size(), 20u);
}

TEST(TemplateBuilderTest, ZeroCompletenessSkipsConstraint) {
  auto collection =
      MakeUnaryCollection({MakeUnarySource("S", {0, 1}, "0", "1/2")});
  TemplateBuilder builder(&collection);
  auto built = builder.Build({Relation{U(0)}});
  ASSERT_TRUE(built.ok());
  ASSERT_TRUE(built->has_value());
  EXPECT_TRUE((*built)->constraints().empty());
}

TEST(TemplateBuilderTest, RepMatchesDirectSemanticsOnIdentity) {
  // For U = {0}: rep(𝒯^U) = worlds containing R(0) with |D| ≤ 2
  // (m = ⌊1/(1/2)⌋ = 2).
  auto collection =
      MakeUnaryCollection({MakeUnarySource("S", {0, 1}, "1/2", "1/2")});
  TemplateBuilder builder(&collection);
  auto built = builder.Build({Relation{U(0)}});
  ASSERT_TRUE(built.ok());
  const DatabaseTemplate& t = **built;

  Database world;
  world.AddFact("R", U(0));
  EXPECT_TRUE(t.RepContains(world));
  world.AddFact("R", U(5));
  EXPECT_TRUE(t.RepContains(world));   // |D| = 2 ≤ m
  world.AddFact("R", U(6));
  EXPECT_FALSE(t.RepContains(world));  // |D| = 3 > m
  Database missing;
  missing.AddFact("R", U(1));
  EXPECT_FALSE(t.RepContains(missing));  // u ⊄ D
}

TEST(TemplateBuilderTest, HeadConstantMismatchYieldsEmptyRep) {
  // View head fixes the station id; a claimed fact with another id can
  // never be produced, so the combination is unrealizable.
  auto view = testing::Q("V(y) <- T(438432, y)");
  Relation extension = {Tuple{Value(int64_t{1990})}};
  auto source = SourceDescriptor::Create("S", view, extension,
                                         Rational::Zero(), Rational::One());
  ASSERT_TRUE(source.ok());
  auto collection = SourceCollection::Create({*source});
  ASSERT_TRUE(collection.ok());
  TemplateBuilder builder(&*collection);
  auto ok_build = builder.Build({extension});
  ASSERT_TRUE(ok_build.ok());
  EXPECT_TRUE(ok_build->has_value());  // 1990 unifies fine

  // Same view, but the extension claims an impossible head.
  auto bad_view = testing::Q("V(y, y) <- T(y, y)");
  Relation bad_extension = {Tuple{Value(int64_t{1}), Value(int64_t{2})}};
  auto bad_source = SourceDescriptor::Create("B", bad_view, bad_extension,
                                             Rational::Zero(),
                                             Rational::One());
  ASSERT_TRUE(bad_source.ok());
  auto bad_collection = SourceCollection::Create({*bad_source});
  ASSERT_TRUE(bad_collection.ok());
  TemplateBuilder bad_builder(&*bad_collection);
  auto bad_build = bad_builder.Build({bad_extension});
  ASSERT_TRUE(bad_build.ok()) << bad_build.status().ToString();
  EXPECT_FALSE(bad_build->has_value());
}

TEST(TemplateBuilderTest, GroundFalseBuiltinYieldsEmptyRep) {
  auto view = testing::Q("V(y) <- T(y), After(y, 1900)");
  Relation extension = {Tuple{Value(int64_t{1800})}};  // violates After
  auto source = SourceDescriptor::Create("S", view, extension,
                                         Rational::Zero(), Rational::One());
  ASSERT_TRUE(source.ok());
  auto collection = SourceCollection::Create({*source});
  ASSERT_TRUE(collection.ok());
  TemplateBuilder builder(&*collection);
  auto built = builder.Build({extension});
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  EXPECT_FALSE(built->has_value());
}

TEST(TemplateBuilderTest, NonGroundBuiltinUnimplemented) {
  // The built-in constrains an existential variable: not expressible.
  auto view = testing::Q("V(x) <- T(x, y), After(y, 1900)");
  Relation extension = {Tuple{Value(int64_t{1})}};
  auto source = SourceDescriptor::Create("S", view, extension,
                                         Rational::Zero(), Rational::One());
  ASSERT_TRUE(source.ok());
  auto collection = SourceCollection::Create({*source});
  ASSERT_TRUE(collection.ok());
  TemplateBuilder builder(&*collection);
  EXPECT_EQ(builder.Build({extension}).status().code(),
            StatusCode::kUnimplemented);
}

TEST(TemplateBuilderTest, JoinViewIntroducesFreshExistentials) {
  auto view = testing::Q("V(x) <- R2(x, y), S1(y)");
  Relation extension = {U(1), U(2)};
  auto source = SourceDescriptor::Create("S", view, extension,
                                         Rational::Zero(), Rational::One());
  ASSERT_TRUE(source.ok());
  auto collection = SourceCollection::Create({*source});
  ASSERT_TRUE(collection.ok());
  TemplateBuilder builder(&*collection);
  auto built = builder.Build({extension});
  ASSERT_TRUE(built.ok());
  ASSERT_TRUE(built->has_value());
  const Tableau& tableau = (*built)->tableaux()[0];
  // Two facts × two body atoms = 4 atoms; the y of fact 1 differs from
  // the y of fact 2.
  EXPECT_EQ(tableau.size(), 4u);
  EXPECT_EQ(TableauVariables(tableau).size(), 2u);
  // Freezing yields a database whose views produce both claimed facts.
  const Database frozen = (*built)->FreezeTableau(0);
  auto produced = view.Evaluate(frozen);
  ASSERT_TRUE(produced.ok());
  EXPECT_EQ(produced->count(U(1)), 1u);
  EXPECT_EQ(produced->count(U(2)), 1u);
  EXPECT_EQ(produced->size(), 2u);
}

TEST(TemplateBuilderTest, EnumerationOfAllowableCombinations) {
  auto collection =
      MakeUnaryCollection({MakeUnarySource("S1", {0, 1}, "1/2", "1/2"),
                           MakeUnarySource("S2", {2}, "1", "1")});
  TemplateBuilder builder(&collection);
  // S1: subsets of size ≥ 1 → 3; S2: subsets of size ≥ 1 → 1. Total 3.
  EXPECT_EQ(builder.CountAllowableCombinations().ToUint64(), 3u);
  uint64_t seen = 0;
  auto completed =
      builder.ForEachAllowableCombination([&](const Combination& combo) {
        EXPECT_EQ(combo.size(), 2u);
        EXPECT_GE(combo[0].size(), 1u);
        EXPECT_EQ(combo[1].size(), 1u);
        ++seen;
        return true;
      });
  ASSERT_TRUE(completed.ok());
  EXPECT_EQ(seen, 3u);
}

TEST(TemplateBuilderTest, CombinationCountWithZeroSoundness) {
  auto collection =
      MakeUnaryCollection({MakeUnarySource("S", {0, 1, 2}, "1", "0")});
  TemplateBuilder builder(&collection);
  EXPECT_EQ(builder.CountAllowableCombinations().ToUint64(), 8u);  // 2^3
}

}  // namespace
}  // namespace psc
