// Error-path coverage for the delta-script parser (delta_script.h) and
// for apply-time validation of parsed scripts: malformed mutation lines,
// arity mismatches, empty batches, trailing separators.

#include "psc/delta/delta_script.h"

#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "psc/source/source_collection.h"
#include "test_util.h"

namespace psc::delta {
namespace {

using ::psc::testing::MakeUnaryCollection;
using ::psc::testing::MakeUnarySource;

TEST(DeltaScriptTest, ParsesBatchesInScriptOrder) {
  PSC_ASSERT_OK_AND_ASSIGN(const std::vector<CollectionDelta> batches,
                           ParseDeltaScript("+ S1(1)\n- S1(2)\n--\n+ S2(3)\n"));
  ASSERT_EQ(batches.size(), 2u);
  EXPECT_EQ(batches[0].size(), 2u);
  EXPECT_EQ(batches[1].size(), 1u);
  EXPECT_EQ(batches[0].sources.at("S1").inserts.size(), 1u);
  EXPECT_EQ(batches[0].sources.at("S1").retracts.size(), 1u);
  EXPECT_EQ(batches[1].sources.at("S2").inserts.size(), 1u);
}

TEST(DeltaScriptTest, CommentsAndBlankLinesAreIgnored) {
  PSC_ASSERT_OK_AND_ASSIGN(
      const std::vector<CollectionDelta> batches,
      ParseDeltaScript("# header\n\n+ S1(1)  # trailing comment\n\n"));
  ASSERT_EQ(batches.size(), 1u);
  EXPECT_EQ(batches[0].size(), 1u);
}

TEST(DeltaScriptTest, EmptyScriptYieldsNoBatches) {
  PSC_ASSERT_OK_AND_ASSIGN(const std::vector<CollectionDelta> batches,
                           ParseDeltaScript(""));
  EXPECT_TRUE(batches.empty());
}

TEST(DeltaScriptTest, CommentOnlyScriptYieldsNoBatches) {
  PSC_ASSERT_OK_AND_ASSIGN(const std::vector<CollectionDelta> batches,
                           ParseDeltaScript("# nothing\n\n# to see\n"));
  EXPECT_TRUE(batches.empty());
}

TEST(DeltaScriptTest, SeparatorOnlyScriptYieldsNoBatches) {
  // Empty batches — leading, doubled and trailing separators — are
  // dropped, never surfaced as zero-op apply points.
  PSC_ASSERT_OK_AND_ASSIGN(const std::vector<CollectionDelta> batches,
                           ParseDeltaScript("--\n--\n--\n"));
  EXPECT_TRUE(batches.empty());
}

TEST(DeltaScriptTest, TrailingSeparatorDoesNotAddAnEmptyBatch) {
  PSC_ASSERT_OK_AND_ASSIGN(const std::vector<CollectionDelta> batches,
                           ParseDeltaScript("+ S1(1)\n--\n"));
  ASSERT_EQ(batches.size(), 1u);
  EXPECT_EQ(batches[0].size(), 1u);
}

TEST(DeltaScriptTest, DoubledSeparatorCollapses) {
  PSC_ASSERT_OK_AND_ASSIGN(const std::vector<CollectionDelta> batches,
                           ParseDeltaScript("+ S1(1)\n--\n--\n+ S1(2)\n"));
  EXPECT_EQ(batches.size(), 2u);
}

TEST(DeltaScriptTest, RejectsUnknownOperator) {
  const auto parsed = ParseDeltaScript("* S1(1)\n");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("line 1"), std::string::npos)
      << parsed.status().ToString();
  EXPECT_NE(parsed.status().message().find("expected '+', '-' or '--'"),
            std::string::npos)
      << parsed.status().ToString();
}

TEST(DeltaScriptTest, RejectsBareFactWithoutOperator) {
  EXPECT_FALSE(ParseDeltaScript("S1(1)\n").ok());
}

TEST(DeltaScriptTest, RejectsTruncatedFact) {
  const auto parsed = ParseDeltaScript("+ S1(1)\n+ S1(\n");
  ASSERT_FALSE(parsed.ok());
  // The error names the offending line so a long streaming script can be
  // fixed without bisection.
  EXPECT_NE(parsed.status().message().find("line 2"), std::string::npos)
      << parsed.status().ToString();
}

TEST(DeltaScriptTest, RejectsOperatorWithoutFact) {
  EXPECT_FALSE(ParseDeltaScript("+\n").ok());
  EXPECT_FALSE(ParseDeltaScript("-   \n").ok());
}

TEST(DeltaScriptTest, ErrorLineNumberCountsCommentsAndBlanks) {
  const auto parsed = ParseDeltaScript("# one\n\n+ S1(1)\n?bad\n");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("line 4"), std::string::npos)
      << parsed.status().ToString();
}

TEST(DeltaScriptTest, ApplyRejectsArityMismatch) {
  SourceCollection collection = MakeUnaryCollection(
      {MakeUnarySource("S1", {1, 2}, "1/2", "1/2")});
  PSC_ASSERT_OK_AND_ASSIGN(const std::vector<CollectionDelta> batches,
                           ParseDeltaScript("+ S1(1, 2)\n"));
  ASSERT_EQ(batches.size(), 1u);
  // The script parses — arity is a property of the collection, so the
  // mismatch surfaces at apply time and leaves the collection untouched.
  const uint64_t generation = collection.generation();
  EXPECT_FALSE(collection.ApplyDelta(batches[0]).ok());
  EXPECT_EQ(collection.generation(), generation);
}

TEST(DeltaScriptTest, ApplyRejectsUnknownSource) {
  SourceCollection collection = MakeUnaryCollection(
      {MakeUnarySource("S1", {1}, "1/2", "1/2")});
  PSC_ASSERT_OK_AND_ASSIGN(const std::vector<CollectionDelta> batches,
                           ParseDeltaScript("+ Nope(1)\n"));
  ASSERT_EQ(batches.size(), 1u);
  EXPECT_FALSE(collection.ApplyDelta(batches[0]).ok());
}

TEST(DeltaScriptTest, FileParserReportsMissingFile) {
  const auto parsed =
      ParseDeltaScriptFile("/nonexistent/delta_script_test.delta");
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace psc::delta
