#include "psc/workload/ghcn.h"

#include "gtest/gtest.h"
#include "psc/source/measures.h"
#include "test_util.h"

namespace psc {
namespace {

GhcnConfig SmallConfig() {
  GhcnConfig config;
  config.num_stations = 6;
  config.start_year = 1990;
  config.end_year = 1990;
  return config;
}

TEST(GhcnTest, TruthHasExpectedShape) {
  GhcnGenerator generator(SmallConfig(), 1);
  const GhcnWorld world = generator.GenerateTruth();
  EXPECT_EQ(world.truth.GetRelation("Station").size(), 6u);
  EXPECT_EQ(world.truth.GetRelation("Temperature").size(), 6u * 12u);
  EXPECT_EQ(world.station_ids.size(), 6u);
  EXPECT_TRUE(world.schema.HasRelation("Station"));
  EXPECT_TRUE(world.schema.HasRelation("Temperature"));
}

TEST(GhcnTest, TruthIsDeterministicPerSeed) {
  GhcnGenerator a(SmallConfig(), 7);
  GhcnGenerator b(SmallConfig(), 7);
  EXPECT_EQ(a.GenerateTruth().truth, b.GenerateTruth().truth);
  GhcnGenerator c(SmallConfig(), 8);
  EXPECT_NE(a.GenerateTruth().truth, c.GenerateTruth().truth);
}

TEST(GhcnTest, CatalogSourceIsExact) {
  GhcnGenerator generator(SmallConfig(), 2);
  const GhcnWorld world = generator.GenerateTruth();
  auto catalog = generator.MakeCatalogSource(world, "S0");
  ASSERT_TRUE(catalog.ok());
  EXPECT_EQ(catalog->extension_size(), 6u);
  EXPECT_TRUE(*IsExact(*catalog, world.truth));
}

TEST(GhcnTest, CountrySourceBoundsHoldOnTruth) {
  GhcnGenerator generator(SmallConfig(), 3);
  const GhcnWorld world = generator.GenerateTruth();
  auto source = generator.MakeCountrySource(world, "S1", "Canada",
                                            /*after_year=*/1900,
                                            /*coverage=*/0.7,
                                            /*error_rate=*/0.2);
  ASSERT_TRUE(source.ok()) << source.status().ToString();
  // The claimed bounds are derived from actual measures, so the ground
  // truth must satisfy them (it is a possible world).
  EXPECT_TRUE(*SatisfiesBounds(*source, world.truth));
  // And they are tight: the actual measures equal the claims.
  auto measures = ComputeMeasures(*source, world.truth);
  ASSERT_TRUE(measures.ok());
  EXPECT_EQ(measures->completeness, source->completeness_bound());
  EXPECT_EQ(measures->soundness, source->soundness_bound());
}

TEST(GhcnTest, FullCoverageNoErrorIsExact) {
  GhcnGenerator generator(SmallConfig(), 4);
  const GhcnWorld world = generator.GenerateTruth();
  auto source = generator.MakeCountrySource(world, "S", "US", 1900, 1.0, 0.0);
  ASSERT_TRUE(source.ok());
  EXPECT_EQ(source->completeness_bound(), Rational::One());
  EXPECT_EQ(source->soundness_bound(), Rational::One());
  EXPECT_TRUE(*IsExact(*source, world.truth));
}

TEST(GhcnTest, ErrorRateLowersSoundness) {
  GhcnGenerator generator(SmallConfig(), 5);
  const GhcnWorld world = generator.GenerateTruth();
  auto noisy = generator.MakeCountrySource(world, "S", "Canada", 1900, 1.0,
                                           0.5);
  ASSERT_TRUE(noisy.ok());
  EXPECT_LT(noisy->soundness_bound(), Rational::One());
  EXPECT_GT(noisy->soundness_bound(), Rational::Zero());
}

TEST(GhcnTest, OverclaimBreaksBoundsOnTruth) {
  GhcnGenerator generator(SmallConfig(), 6);
  const GhcnWorld world = generator.GenerateTruth();
  auto braggart = generator.MakeCountrySource(world, "S", "Canada", 1900,
                                              0.5, 0.4, /*overclaim=*/true);
  ASSERT_TRUE(braggart.ok());
  EXPECT_FALSE(*SatisfiesBounds(*braggart, world.truth));
}

TEST(GhcnTest, StationSourceUsesHeadConstant) {
  GhcnGenerator generator(SmallConfig(), 7);
  const GhcnWorld world = generator.GenerateTruth();
  const int64_t station = world.station_ids[0];
  auto source = generator.MakeStationSource(world, "S3", station, 1.0, 0.0);
  ASSERT_TRUE(source.ok());
  EXPECT_EQ(source->extension_size(), 12u);  // one year of months
  EXPECT_TRUE(*IsExact(*source, world.truth));
  EXPECT_EQ(source->view().head().arity(), 3u);
}

TEST(GhcnTest, InvalidRatesRejected) {
  GhcnGenerator generator(SmallConfig(), 8);
  const GhcnWorld world = generator.GenerateTruth();
  EXPECT_FALSE(
      generator.MakeCountrySource(world, "S", "Canada", 1900, 1.5, 0.0).ok());
  EXPECT_FALSE(
      generator.MakeCountrySource(world, "S", "Canada", 1900, 0.5, -0.1)
          .ok());
}

TEST(GhcnTest, FederationIsConsistentCollection) {
  GhcnGenerator generator(SmallConfig(), 9);
  const GhcnWorld world = generator.GenerateTruth();
  auto s0 = generator.MakeCatalogSource(world, "S0");
  auto s1 = generator.MakeCountrySource(world, "S1", "Canada", 1900, 0.8,
                                        0.1);
  auto s2 = generator.MakeCountrySource(world, "S2", "US", 1900, 0.6, 0.3);
  ASSERT_TRUE(s0.ok() && s1.ok() && s2.ok());
  auto collection = SourceCollection::Create({*s0, *s1, *s2});
  ASSERT_TRUE(collection.ok());
  // The ground truth is a possible world of the federation.
  EXPECT_TRUE(*collection->IsPossibleWorld(world.truth));
}

}  // namespace
}  // namespace psc
