// Randomized properties of the Section 5 confidence semantics:
//   * counter confidences equal brute-force frequencies,
//   * confidence 1 ⟺ certain, confidence > 0 ⟺ possible,
//   * facts shared by more (sound) sources never rank below facts in none.

#include <map>

#include "gtest/gtest.h"
#include "psc/consistency/possible_worlds.h"
#include "psc/counting/confidence.h"
#include "psc/workload/random_collections.h"
#include "test_util.h"

namespace psc {
namespace {

using testing::IntDomain;

class ConfidencePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ConfidencePropertyTest, CounterEqualsBruteForceFrequencies) {
  Rng rng(GetParam());
  RandomIdentityConfig config;
  config.num_sources = 2;
  config.universe_size = 4;
  config.min_extension = 1;
  config.max_extension = 4;
  for (int trial = 0; trial < 30; ++trial) {
    auto collection = MakeRandomIdentityCollection(config, &rng);
    ASSERT_TRUE(collection.ok());
    auto instance = IdentityInstance::Create(*collection, IntDomain(4));
    ASSERT_TRUE(instance.ok());
    auto table = ComputeBaseFactConfidences(*instance);
    if (!table.ok()) {
      ASSERT_EQ(table.status().code(), StatusCode::kInconsistent);
      continue;
    }
    // Brute-force frequencies.
    BruteForceWorldEnumerator oracle(&*collection, IntDomain(4));
    std::map<Tuple, uint64_t> contains;
    uint64_t worlds = 0;
    ASSERT_TRUE(oracle
                    .ForEachPossibleWorld([&](const Database& db) {
                      ++worlds;
                      for (const Fact& fact : db.AllFacts()) {
                        ++contains[fact.tuple()];
                      }
                      return true;
                    })
                    .ok());
    ASSERT_EQ(table->world_count.ToUint64(), worlds);
    for (const TupleConfidence& entry : table->entries) {
      const double oracle_conf =
          static_cast<double>(contains[entry.tuple]) /
          static_cast<double>(worlds);
      EXPECT_NEAR(entry.confidence, oracle_conf, 1e-12)
          << collection->ToString() << "\nfact "
          << TupleToString(entry.tuple);
    }
  }
}

TEST_P(ConfidencePropertyTest, CertainAndPossibleMatchDefinitions) {
  Rng rng(GetParam() + 77);
  RandomIdentityConfig config;
  config.num_sources = 3;
  config.universe_size = 4;
  config.min_extension = 1;
  config.max_extension = 3;
  for (int trial = 0; trial < 30; ++trial) {
    auto collection = MakeRandomIdentityCollection(config, &rng);
    ASSERT_TRUE(collection.ok());
    auto instance = IdentityInstance::Create(*collection, IntDomain(4));
    ASSERT_TRUE(instance.ok());
    auto table = ComputeBaseFactConfidences(*instance);
    if (!table.ok()) continue;  // inconsistent draw

    // Recompute certain/possible extensionally.
    BruteForceWorldEnumerator oracle(&*collection, IntDomain(4));
    auto worlds = oracle.CollectPossibleWorlds();
    ASSERT_TRUE(worlds.ok());
    ASSERT_FALSE(worlds->empty());
    Relation certain = (*worlds)[0].GetRelation("R");
    Relation possible;
    for (const Database& world : *worlds) {
      const Relation& tuples = world.GetRelation("R");
      Relation still;
      for (const Tuple& tuple : certain) {
        if (tuples.count(tuple) > 0) still.insert(tuple);
      }
      certain = std::move(still);
      possible.insert(tuples.begin(), tuples.end());
    }

    const std::vector<Tuple> via_conf_certain = table->CertainFacts();
    const std::vector<Tuple> via_conf_possible = table->PossibleFacts();
    EXPECT_EQ(Relation(via_conf_certain.begin(), via_conf_certain.end()),
              certain)
        << collection->ToString();
    EXPECT_EQ(Relation(via_conf_possible.begin(), via_conf_possible.end()),
              possible)
        << collection->ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConfidencePropertyTest,
                         ::testing::Values(101, 202, 303));

TEST(ConfidenceOrderingTest, UnsupportedFactsNeverBeatSupportedOnes) {
  // In Example 5.1-style collections, the confidence of a fact outside
  // every extension is the minimum over the universe.
  Rng rng(9);
  RandomIdentityConfig config;
  config.num_sources = 2;
  config.universe_size = 3;
  config.min_extension = 1;
  config.max_extension = 3;
  for (int trial = 0; trial < 30; ++trial) {
    auto collection = MakeRandomIdentityCollection(config, &rng);
    ASSERT_TRUE(collection.ok());
    // Universe strictly larger than ⋃vᵢ so the signature-0 group exists.
    auto instance = IdentityInstance::Create(*collection, IntDomain(5));
    ASSERT_TRUE(instance.ok());
    auto table = ComputeBaseFactConfidences(*instance);
    if (!table.ok()) continue;
    double unsupported = 2.0;
    for (const TupleConfidence& entry : table->entries) {
      auto group = instance->GroupIndexOf(entry.tuple);
      ASSERT_TRUE(group.ok());
      if (instance->groups()[*group].signature == 0) {
        unsupported = entry.confidence;
        break;
      }
    }
    ASSERT_LE(unsupported, 1.0);
    for (const TupleConfidence& entry : table->entries) {
      EXPECT_GE(entry.confidence + 1e-12, unsupported)
          << collection->ToString();
    }
  }
}

}  // namespace
}  // namespace psc
