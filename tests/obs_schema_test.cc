#include "psc/obs/report.h"

#include <string>

#include "gtest/gtest.h"
#include "psc/obs/metrics.h"
#include "psc/obs/trace.h"

namespace psc {
namespace {

class ObsSchemaTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::Options options;
    options.trace_enabled = true;
    obs::SetOptions(options);
    obs::GlobalTrace().Clear();
    obs::GlobalMetrics().Reset();
  }
  void TearDown() override {
    obs::SetOptions(obs::Options{});
    obs::GlobalTrace().Clear();
    obs::GlobalMetrics().Reset();
  }
};

TEST_F(ObsSchemaTest, CapturedReportValidates) {
  obs::GlobalMetrics().GetCounter("obs_test.schema_counter").Increment(3);
  obs::GlobalMetrics().GetGauge("obs_test.schema_gauge").Set(12);
  obs::GlobalMetrics().GetHistogram("obs_test.schema_histogram").Record(7);
  {
    obs::TraceSpan root("obs_test.schema_root");
    obs::TraceSpan child("obs_test.schema_child");
    (void)child;
    (void)root;
  }
  const obs::RunReport report = obs::RunReport::Capture();
  const Status status = obs::ValidateRunReportJson(report.ToJson());
  EXPECT_TRUE(status.ok()) << status.ToString();
}

TEST_F(ObsSchemaTest, EmptyReportValidates) {
  const Status status =
      obs::ValidateRunReportJson(obs::RunReport::Capture().ToJson());
  EXPECT_TRUE(status.ok()) << status.ToString();
}

TEST_F(ObsSchemaTest, MinimalHandWrittenDocumentValidates) {
  const std::string minimal =
      "{\"schema_version\":1,\"counters\":{},\"gauges\":{},"
      "\"histograms\":{},\"spans\":[],\"spans_dropped\":0}";
  EXPECT_TRUE(obs::ValidateRunReportJson(minimal).ok());
}

TEST_F(ObsSchemaTest, RejectsMalformedDocuments) {
  // Not JSON at all.
  EXPECT_FALSE(obs::ValidateRunReportJson("not json").ok());
  // Not an object.
  EXPECT_FALSE(obs::ValidateRunReportJson("[1,2]").ok());
  // Missing schema_version.
  EXPECT_FALSE(obs::ValidateRunReportJson(
                   "{\"counters\":{},\"gauges\":{},\"histograms\":{},"
                   "\"spans\":[],\"spans_dropped\":0}")
                   .ok());
  // Unsupported schema_version.
  EXPECT_FALSE(obs::ValidateRunReportJson(
                   "{\"schema_version\":99,\"counters\":{},\"gauges\":{},"
                   "\"histograms\":{},\"spans\":[],\"spans_dropped\":0}")
                   .ok());
  // Negative counter.
  EXPECT_FALSE(obs::ValidateRunReportJson(
                   "{\"schema_version\":1,\"counters\":{\"c\":-1},"
                   "\"gauges\":{},\"histograms\":{},\"spans\":[],"
                   "\"spans_dropped\":0}")
                   .ok());
  // Counter value of the wrong JSON type.
  EXPECT_FALSE(obs::ValidateRunReportJson(
                   "{\"schema_version\":1,\"counters\":{\"c\":\"five\"},"
                   "\"gauges\":{},\"histograms\":{},\"spans\":[],"
                   "\"spans_dropped\":0}")
                   .ok());
}

TEST_F(ObsSchemaTest, RejectsHistogramInvariantViolations) {
  // min > max is impossible for a real histogram.
  const std::string min_above_max =
      "{\"schema_version\":1,\"counters\":{},\"gauges\":{},"
      "\"histograms\":{\"h\":{\"count\":2,\"sum\":10,\"min\":8,\"max\":2,"
      "\"mean\":5,\"p50\":5,\"p90\":8,\"p99\":8}},"
      "\"spans\":[],\"spans_dropped\":0}";
  EXPECT_FALSE(obs::ValidateRunReportJson(min_above_max).ok());
  // A sum without any samples.
  const std::string sum_without_samples =
      "{\"schema_version\":1,\"counters\":{},\"gauges\":{},"
      "\"histograms\":{\"h\":{\"count\":0,\"sum\":10,\"min\":0,\"max\":0,"
      "\"mean\":0,\"p50\":0,\"p90\":0,\"p99\":0}},"
      "\"spans\":[],\"spans_dropped\":0}";
  EXPECT_FALSE(obs::ValidateRunReportJson(sum_without_samples).ok());
}

TEST_F(ObsSchemaTest, RejectsDanglingSpanParents) {
  const std::string dangling_parent =
      "{\"schema_version\":1,\"counters\":{},\"gauges\":{},"
      "\"histograms\":{},"
      "\"spans\":[{\"id\":1,\"parent\":99,\"name\":\"s\",\"depth\":1,"
      "\"start_us\":0,\"duration_us\":1}],"
      "\"spans_dropped\":0}";
  EXPECT_FALSE(obs::ValidateRunReportJson(dangling_parent).ok());
  // The same link is tolerated when spans were dropped: the parent may
  // simply have fallen out of the buffer.
  const std::string dangling_but_truncated =
      "{\"schema_version\":1,\"counters\":{},\"gauges\":{},"
      "\"histograms\":{},"
      "\"spans\":[{\"id\":1,\"parent\":99,\"name\":\"s\",\"depth\":1,"
      "\"start_us\":0,\"duration_us\":1}],"
      "\"spans_dropped\":3}";
  EXPECT_TRUE(obs::ValidateRunReportJson(dangling_but_truncated).ok());
}

TEST_F(ObsSchemaTest, SchemaV2RequiresQueriesSection) {
  // v1 documents never carry queries and must stay accepted (archived
  // bench baselines); v2 documents must carry the section, even empty.
  const std::string v2_minimal =
      "{\"schema_version\":2,\"counters\":{},\"gauges\":{},"
      "\"histograms\":{},\"spans\":[],\"spans_dropped\":0,\"queries\":{}}";
  EXPECT_TRUE(obs::ValidateRunReportJson(v2_minimal).ok());
  const std::string v2_missing_queries =
      "{\"schema_version\":2,\"counters\":{},\"gauges\":{},"
      "\"histograms\":{},\"spans\":[],\"spans_dropped\":0}";
  EXPECT_FALSE(obs::ValidateRunReportJson(v2_missing_queries).ok());
}

TEST_F(ObsSchemaTest, SchemaV2ValidatesPerQueryEntries) {
  const std::string with_query =
      "{\"schema_version\":2,\"counters\":{},\"gauges\":{},"
      "\"histograms\":{},\"spans\":[],\"spans_dropped\":0,"
      "\"queries\":{\"q1:answer\":{\"id\":1,\"counters\":{\"c\":3},"
      "\"gauges\":{},\"histograms\":{},\"spans\":2,\"spans_dropped\":0,"
      "\"trip\":\"deadline\"}}}";
  EXPECT_TRUE(obs::ValidateRunReportJson(with_query).ok());
  // A query entry without its trip string is malformed.
  const std::string missing_trip =
      "{\"schema_version\":2,\"counters\":{},\"gauges\":{},"
      "\"histograms\":{},\"spans\":[],\"spans_dropped\":0,"
      "\"queries\":{\"q1:answer\":{\"id\":1,\"counters\":{},"
      "\"gauges\":{},\"histograms\":{},\"spans\":0,\"spans_dropped\":0}}}";
  EXPECT_FALSE(obs::ValidateRunReportJson(missing_trip).ok());
}

TEST_F(ObsSchemaTest, SchemaV2RequiresSpanThreadAndScopeFields) {
  // v2 spans carry tid/scope; v1 spans (no such fields) stay accepted.
  const std::string v2_span_without_tid =
      "{\"schema_version\":2,\"counters\":{},\"gauges\":{},"
      "\"histograms\":{},"
      "\"spans\":[{\"id\":1,\"parent\":-1,\"name\":\"s\",\"depth\":0,"
      "\"start_us\":0,\"duration_us\":1}],"
      "\"spans_dropped\":0,\"queries\":{}}";
  EXPECT_FALSE(obs::ValidateRunReportJson(v2_span_without_tid).ok());
  const std::string v2_span_complete =
      "{\"schema_version\":2,\"counters\":{},\"gauges\":{},"
      "\"histograms\":{},"
      "\"spans\":[{\"id\":1,\"parent\":-1,\"name\":\"s\",\"depth\":0,"
      "\"start_us\":0,\"duration_us\":1,\"tid\":1,\"scope\":0}],"
      "\"spans_dropped\":0,\"queries\":{}}";
  EXPECT_TRUE(obs::ValidateRunReportJson(v2_span_complete).ok());
}

TEST_F(ObsSchemaTest, SchemaV2RequiresP95) {
  const std::string v2_histogram_without_p95 =
      "{\"schema_version\":2,\"counters\":{},\"gauges\":{},"
      "\"histograms\":{\"h\":{\"count\":1,\"sum\":4,\"min\":4,\"max\":4,"
      "\"mean\":4,\"p50\":4,\"p90\":4,\"p99\":4}},"
      "\"spans\":[],\"spans_dropped\":0,\"queries\":{}}";
  EXPECT_FALSE(obs::ValidateRunReportJson(v2_histogram_without_p95).ok());
}

TEST_F(ObsSchemaTest, TableRendersEveryInstrumentName) {
  obs::GlobalMetrics().GetCounter("obs_test.table_counter").Increment();
  obs::GlobalMetrics().GetGauge("obs_test.table_gauge").Set(5);
  obs::GlobalMetrics().GetHistogram("obs_test.table_histogram").Record(1);
  const std::string table = obs::RunReport::Capture().ToTable();
  EXPECT_NE(table.find("obs_test.table_counter"), std::string::npos);
  EXPECT_NE(table.find("obs_test.table_gauge"), std::string::npos);
  EXPECT_NE(table.find("obs_test.table_histogram"), std::string::npos);
}

}  // namespace
}  // namespace psc
