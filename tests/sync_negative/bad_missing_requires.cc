// Negative-compilation snippet: calls a PSC_REQUIRES(mu_) function
// without holding the mutex, and unlocks a mutex it never locked. MUST
// FAIL to compile under `clang++ -Wthread-safety -Werror`
// (-Wthread-safety-analysis: calling function requires holding mutex /
// releasing mutex that was not held).

#include "psc/sync/mutex.h"

namespace {

class Counter {
 public:
  void IncrementLocked() PSC_REQUIRES(mu_) { ++value_; }

  void Increment() {
    IncrementLocked();  // BAD: contract requires mu_ held
  }

  void BrokenUnlock() {
    mu_.Unlock();  // BAD: releasing a lock this path never acquired
  }

 private:
  psc::sync::Mutex mu_{"test.counter", 10};
  int value_ PSC_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter counter;
  counter.Increment();
  counter.BrokenUnlock();
  return 0;
}
