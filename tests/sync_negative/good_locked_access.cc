// Control snippet for the annotation harness: correct locking that MUST
// compile cleanly under `clang++ -Wthread-safety -Werror`. If this file
// fails, the harness (or the annotations) is broken, not the bad_*.cc
// snippets' code.

#include "psc/sync/mutex.h"

namespace {

class Counter {
 public:
  void Increment() {
    psc::sync::MutexLock lock(&mu_);
    ++value_;
  }

  int Get() const {
    psc::sync::MutexLock lock(&mu_);
    return value_;
  }

  void IncrementLocked() PSC_REQUIRES(mu_) { ++value_; }

  void IncrementViaHelper() {
    psc::sync::MutexLock lock(&mu_);
    IncrementLocked();
  }

 private:
  mutable psc::sync::Mutex mu_{"test.counter", 10};
  int value_ PSC_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter counter;
  counter.Increment();
  counter.IncrementViaHelper();
  return counter.Get() == 2 ? 0 : 1;
}
