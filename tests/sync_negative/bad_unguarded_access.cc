// Negative-compilation snippet: reads and writes a PSC_GUARDED_BY field
// without holding its mutex. MUST FAIL to compile under
// `clang++ -Wthread-safety -Werror` (-Wthread-safety-analysis: reading /
// writing variable requires holding mutex). The harness
// (run_annotation_check.cmake) asserts the failure.

#include "psc/sync/mutex.h"

namespace {

class Counter {
 public:
  void Increment() {
    ++value_;  // BAD: mu_ not held
  }

  int Get() const {
    return value_;  // BAD: mu_ not held
  }

 private:
  mutable psc::sync::Mutex mu_{"test.counter", 10};
  int value_ PSC_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter counter;
  counter.Increment();
  return counter.Get();
}
