// Wire-protocol parsing tests (serve/protocol.h): the envelope must
// reject oversized, truncated and malformed lines with one error apiece
// (never desynchronizing the stream), accept both id forms, and enforce
// verb-specific required members while ignoring unknown ones.

#include "psc/serve/protocol.h"

#include <string>

#include "gtest/gtest.h"
#include "test_util.h"

namespace psc::serve {
namespace {

TEST(ServeProtocolTest, ParsesMinimalCheck) {
  PSC_ASSERT_OK_AND_ASSIGN(const Request request,
                           ParseRequest("{\"verb\":\"check\"}"));
  EXPECT_EQ(request.verb, Verb::kCheck);
  EXPECT_EQ(request.id, "");
  EXPECT_EQ(request.collection, "default");
  EXPECT_EQ(request.deadline_ms, 0);
  EXPECT_EQ(request.node_budget, 0u);
  EXPECT_FALSE(request.domain_given);
}

TEST(ServeProtocolTest, ParsesFullAnswerRequest) {
  PSC_ASSERT_OK_AND_ASSIGN(
      const Request request,
      ParseRequest("{\"verb\":\"answer\",\"id\":\"q7\",\"collection\":\"m\","
                   "\"query\":\"Ans(x) <- R(x)\",\"domain\":[1,\"a\",2],"
                   "\"deadline_ms\":250,\"node_budget\":1000}"));
  EXPECT_EQ(request.verb, Verb::kAnswer);
  EXPECT_EQ(request.id, "q7");
  EXPECT_EQ(request.collection, "m");
  EXPECT_EQ(request.query, "Ans(x) <- R(x)");
  ASSERT_TRUE(request.domain_given);
  ASSERT_EQ(request.domain.size(), 3u);
  EXPECT_EQ(request.domain[0], Value(int64_t{1}));
  EXPECT_EQ(request.domain[1], Value(std::string("a")));
  EXPECT_EQ(request.deadline_ms, 250);
  EXPECT_EQ(request.node_budget, 1000u);
}

TEST(ServeProtocolTest, IntegerIdIsNormalizedToItsDecimalString) {
  PSC_ASSERT_OK_AND_ASSIGN(
      const Request request,
      ParseRequest("{\"verb\":\"stats\",\"id\":42}"));
  EXPECT_EQ(request.id, "42");
}

TEST(ServeProtocolTest, RejectsNonIntegralId) {
  const auto parsed = ParseRequest("{\"verb\":\"stats\",\"id\":1.5}");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("'id'"), std::string::npos);
}

TEST(ServeProtocolTest, RejectsTruncatedJson) {
  const auto parsed = ParseRequest("{\"verb\":\"check\"");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("malformed or truncated JSON"),
            std::string::npos)
      << parsed.status().ToString();
}

TEST(ServeProtocolTest, RejectsNonObjectDocument) {
  EXPECT_FALSE(ParseRequest("[\"check\"]").ok());
  EXPECT_FALSE(ParseRequest("\"check\"").ok());
}

TEST(ServeProtocolTest, RejectsMissingVerb) {
  const auto parsed = ParseRequest("{\"id\":\"1\"}");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("missing or non-string 'verb'"),
            std::string::npos);
}

TEST(ServeProtocolTest, RejectsUnknownVerb) {
  const auto parsed = ParseRequest("{\"verb\":\"reticulate\"}");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("unknown verb 'reticulate'"),
            std::string::npos)
      << parsed.status().ToString();
}

TEST(ServeProtocolTest, RejectsOversizedLine) {
  ParseLimits limits;
  limits.max_line_bytes = 64;
  // Well-formed but over the envelope cap: rejected before any JSON work.
  std::string line = "{\"verb\":\"load\",\"text\":\"";
  line.append(128, 'x');
  line.append("\"}");
  const auto parsed = ParseRequest(line, limits);
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("oversized request line"),
            std::string::npos)
      << parsed.status().ToString();
}

TEST(ServeProtocolTest, VerbSpecificRequiredMembers) {
  EXPECT_FALSE(ParseRequest("{\"verb\":\"load\"}").ok());
  EXPECT_FALSE(ParseRequest("{\"verb\":\"answer\"}").ok());
  EXPECT_FALSE(ParseRequest("{\"verb\":\"apply-delta\"}").ok());
  PSC_EXPECT_OK(ParseRequest("{\"verb\":\"check\"}").status());
  PSC_EXPECT_OK(ParseRequest("{\"verb\":\"stats\"}").status());
  PSC_EXPECT_OK(ParseRequest("{\"verb\":\"shutdown\"}").status());
}

TEST(ServeProtocolTest, RejectsWrongMemberTypes) {
  EXPECT_FALSE(ParseRequest("{\"verb\":\"load\",\"text\":7}").ok());
  EXPECT_FALSE(
      ParseRequest("{\"verb\":\"answer\",\"query\":\"A(x) <- R(x)\","
                   "\"domain\":\"abc\"}")
          .ok());
  EXPECT_FALSE(
      ParseRequest("{\"verb\":\"answer\",\"query\":\"A(x) <- R(x)\","
                   "\"domain\":[1.5]}")
          .ok());
  EXPECT_FALSE(
      ParseRequest("{\"verb\":\"check\",\"deadline_ms\":-1}").ok());
  EXPECT_FALSE(
      ParseRequest("{\"verb\":\"check\",\"node_budget\":\"many\"}").ok());
}

TEST(ServeProtocolTest, EmptyDomainArrayStillCountsAsGiven) {
  // domain:[] pins the answer to the empty domain; it must not silently
  // fall back to the server-side default.
  PSC_ASSERT_OK_AND_ASSIGN(
      const Request request,
      ParseRequest("{\"verb\":\"answer\",\"query\":\"A(x) <- R(x)\","
                   "\"domain\":[]}"));
  EXPECT_TRUE(request.domain_given);
  EXPECT_TRUE(request.domain.empty());
}

TEST(ServeProtocolTest, UnknownMembersAreIgnored) {
  PSC_ASSERT_OK_AND_ASSIGN(
      const Request request,
      ParseRequest("{\"verb\":\"check\",\"future_member\":{\"x\":[1]}}"));
  EXPECT_EQ(request.verb, Verb::kCheck);
}

TEST(ServeProtocolTest, JsonObjectWriterEscapesAndOrders) {
  JsonObjectWriter writer;
  writer.String("a", "line\n\"quote\"");
  writer.Uint("b", 7);
  writer.Bool("c", false);
  writer.Raw("d", "[1,2]");
  EXPECT_EQ(writer.Finish(),
            "{\"a\":\"line\\n\\\"quote\\\"\",\"b\":7,\"c\":false,\"d\":[1,2]}");
}

TEST(ServeProtocolTest, FormatFixed6MatchesCliPrecision) {
  EXPECT_EQ(FormatFixed6(0.5), "0.500000");
  EXPECT_EQ(FormatFixed6(2.0 / 3.0), "0.666667");
  EXPECT_EQ(FormatFixed6(1.0), "1.000000");
}

TEST(ServeProtocolTest, ErrorResponseLineShapes) {
  const Status status = Status::InvalidArgument("boom");
  // With no parsed request the verb is labeled "?" and the id is empty.
  const std::string unparsed = ErrorResponseLine(nullptr, status);
  EXPECT_NE(unparsed.find("\"verb\":\"?\""), std::string::npos) << unparsed;
  EXPECT_NE(unparsed.find("\"ok\":false"), std::string::npos) << unparsed;
  EXPECT_NE(unparsed.find("boom"), std::string::npos) << unparsed;

  Request request;
  request.verb = Verb::kAnswer;
  request.id = "q1";
  const std::string parsed = ErrorResponseLine(&request, status);
  EXPECT_NE(parsed.find("\"id\":\"q1\""), std::string::npos) << parsed;
  EXPECT_NE(parsed.find("\"verb\":\"answer\""), std::string::npos) << parsed;
}

TEST(ServeProtocolTest, VerbRoundTrip) {
  for (const Verb verb : {Verb::kLoad, Verb::kCheck, Verb::kAnswer,
                          Verb::kApplyDelta, Verb::kStats, Verb::kShutdown}) {
    const std::string line =
        std::string("{\"verb\":\"") + VerbToString(verb) + "\"," +
        "\"text\":\"t\",\"query\":\"q\",\"script\":\"s\"}";
    PSC_ASSERT_OK_AND_ASSIGN(const Request request, ParseRequest(line));
    EXPECT_EQ(request.verb, verb);
  }
}

}  // namespace
}  // namespace psc::serve
