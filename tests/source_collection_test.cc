#include "psc/source/source_collection.h"

#include "gtest/gtest.h"
#include "test_util.h"

namespace psc {
namespace {

using testing::MakeUnaryCollection;
using testing::MakeUnarySource;

TEST(SourceCollectionTest, CreateValidatesNames) {
  EXPECT_FALSE(SourceCollection::Create(
                   {MakeUnarySource("A", {1}, "1", "1"),
                    MakeUnarySource("A", {2}, "1", "1")})
                   .ok());
  EXPECT_FALSE(
      SourceCollection::Create({MakeUnarySource("", {1}, "1", "1")}).ok());
}

TEST(SourceCollectionTest, SchemaInferredFromViews) {
  auto collection = MakeUnaryCollection({MakeUnarySource("A", {1}, "1", "1")});
  EXPECT_TRUE(collection.schema().HasRelation("R"));
  EXPECT_EQ(*collection.schema().Arity("R"), 1u);
}

TEST(SourceCollectionTest, IndexOf) {
  auto collection = MakeUnaryCollection({MakeUnarySource("A", {1}, "1", "1"),
                                         MakeUnarySource("B", {2}, "1", "1")});
  EXPECT_EQ(*collection.IndexOf("B"), 1u);
  EXPECT_EQ(collection.IndexOf("C").status().code(), StatusCode::kNotFound);
}

TEST(SourceCollectionTest, IsPossibleWorldChecksEverySource) {
  auto collection =
      MakeUnaryCollection({MakeUnarySource("A", {1, 2}, "1/2", "1/2"),
                           MakeUnarySource("B", {2, 3}, "1/2", "1/2")});
  Database world;
  world.AddFact("R", {Value(int64_t{2})});
  EXPECT_TRUE(*collection.IsPossibleWorld(world));
  Database bad;
  bad.AddFact("R", {Value(int64_t{9})});
  EXPECT_FALSE(*collection.IsPossibleWorld(bad));
}

TEST(SourceCollectionTest, SizeAndWitnessBound) {
  auto collection =
      MakeUnaryCollection({MakeUnarySource("A", {1, 2}, "1", "1"),
                           MakeUnarySource("B", {3}, "1", "1")});
  EXPECT_EQ(collection.TotalExtensionSize(), 3u);
  // Identity views have body size 1 → bound = 1 · 3.
  EXPECT_EQ(collection.WitnessSizeBound(), 3u);
}

TEST(SourceCollectionTest, WitnessBoundUsesMaxBodySize) {
  auto join_view = testing::Q("V(x) <- R2(x, y), S2(y)");
  Relation extension = {testing::U(1)};
  auto join_source = SourceDescriptor::Create("J", join_view, extension,
                                              Rational::One(),
                                              Rational::One());
  ASSERT_TRUE(join_source.ok());
  auto collection = SourceCollection::Create(
      {*join_source, MakeUnarySource("A", {1, 2}, "1", "1")});
  ASSERT_TRUE(collection.ok());
  // max |body| = 2 (relational atoms of J), Σ|vᵢ| = 3.
  EXPECT_EQ(collection->WitnessSizeBound(), 6u);
}

TEST(SourceCollectionTest, AllIdentityViewsDetection) {
  auto identity = MakeUnaryCollection({MakeUnarySource("A", {1}, "1", "1"),
                                       MakeUnarySource("B", {2}, "1", "1")});
  std::string relation;
  EXPECT_TRUE(identity.AllIdentityViews(&relation));
  EXPECT_EQ(relation, "R");

  auto proj = testing::Q("V(x) <- R2(x, y)");
  auto proj_source = SourceDescriptor::Create("P", proj, {}, Rational::One(),
                                              Rational::One());
  ASSERT_TRUE(proj_source.ok());
  auto mixed = SourceCollection::Create(
      {MakeUnarySource("A", {1}, "1", "1"), *proj_source});
  ASSERT_TRUE(mixed.ok());
  EXPECT_FALSE(mixed->AllIdentityViews());

  // Identities over different relations do not qualify.
  auto other = SourceDescriptor::Create(
      "O", ConjunctiveQuery::Identity("S", 1), {}, Rational::One(),
      Rational::One());
  ASSERT_TRUE(other.ok());
  auto two_relations = SourceCollection::Create(
      {MakeUnarySource("A", {1}, "1", "1"), *other});
  ASSERT_TRUE(two_relations.ok());
  EXPECT_FALSE(two_relations->AllIdentityViews());

  // The empty collection has no common relation.
  EXPECT_FALSE(MakeUnaryCollection({}).AllIdentityViews());
}

TEST(SourceCollectionTest, MentionedConstantsCoverExtensionsAndViews) {
  auto view = testing::Q("V(y) <- Temperature(438432, y), After(y, 1900)");
  Relation extension = {testing::U(1990)};
  auto source = SourceDescriptor::Create("S", view, extension,
                                         Rational::One(), Rational::One());
  ASSERT_TRUE(source.ok());
  auto collection = SourceCollection::Create({*source});
  ASSERT_TRUE(collection.ok());
  const std::vector<Value> constants = collection->MentionedConstants();
  EXPECT_EQ(constants,
            (std::vector<Value>{Value(int64_t{1900}), Value(int64_t{1990}),
                                Value(int64_t{438432})}));
}

}  // namespace
}  // namespace psc
