// Definition 5.1 operator semantics: π uses the independent-or ⊕,
// σ preserves confidences, × multiplies.

#include "psc/algebra/operators.h"

#include "gtest/gtest.h"
#include "test_util.h"

namespace psc {
namespace {

Tuple T2(int64_t a, int64_t b) { return {Value(a), Value(b)}; }
using testing::U;

ProbRelation Pairs() {
  ProbRelation rel(2);
  EXPECT_TRUE(rel.Insert(T2(1, 10), 0.5).ok());
  EXPECT_TRUE(rel.Insert(T2(1, 20), 0.5).ok());
  EXPECT_TRUE(rel.Insert(T2(2, 10), 0.25).ok());
  return rel;
}

TEST(OperatorsTest, ProjectionUsesIndependentOr) {
  auto projected = Project(Pairs(), {0});
  ASSERT_TRUE(projected.ok());
  // conf(1) = 1 − (1−0.5)(1−0.5) = 0.75; conf(2) = 0.25.
  EXPECT_DOUBLE_EQ(*projected->ConfidenceOf(U(1)), 0.75);
  EXPECT_DOUBLE_EQ(*projected->ConfidenceOf(U(2)), 0.25);
}

TEST(OperatorsTest, ProjectionCanReorderAndRepeatColumns) {
  auto swapped = Project(Pairs(), {1, 0});
  ASSERT_TRUE(swapped.ok());
  EXPECT_DOUBLE_EQ(*swapped->ConfidenceOf(T2(10, 1)), 0.5);
  auto doubled = Project(Pairs(), {0, 0});
  ASSERT_TRUE(doubled.ok());
  EXPECT_DOUBLE_EQ(*doubled->ConfidenceOf(T2(1, 1)), 0.75);
  EXPECT_FALSE(Project(Pairs(), {5}).ok());  // column out of range
}

TEST(OperatorsTest, SelectionPreservesConfidence) {
  auto selected = Select(
      Pairs(), {Condition::WithConstant(0, "Eq", Value(int64_t{1}))});
  ASSERT_TRUE(selected.ok());
  EXPECT_EQ(selected->size(), 2u);
  EXPECT_DOUBLE_EQ(*selected->ConfidenceOf(T2(1, 10)), 0.5);
  EXPECT_DOUBLE_EQ(*selected->ConfidenceOf(T2(2, 10)), 0.0);
}

TEST(OperatorsTest, SelectionColumnToColumnAndBuiltins) {
  ProbRelation rel(2);
  ASSERT_TRUE(rel.Insert(T2(1, 1), 0.5).ok());
  ASSERT_TRUE(rel.Insert(T2(1, 2), 0.5).ok());
  auto diagonal = Select(rel, {Condition::WithColumn(0, "Eq", 1)});
  ASSERT_TRUE(diagonal.ok());
  EXPECT_EQ(diagonal->size(), 1u);
  auto after = Select(rel, {Condition::WithConstant(1, "After",
                                                    Value(int64_t{1}))});
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->size(), 1u);
  EXPECT_DOUBLE_EQ(*after->ConfidenceOf(T2(1, 2)), 0.5);
}

TEST(OperatorsTest, SelectionConjunction) {
  auto selected = Select(
      Pairs(), {Condition::WithConstant(0, "Eq", Value(int64_t{1})),
                Condition::WithConstant(1, "Gt", Value(int64_t{15}))});
  ASSERT_TRUE(selected.ok());
  EXPECT_EQ(selected->size(), 1u);
  EXPECT_DOUBLE_EQ(*selected->ConfidenceOf(T2(1, 20)), 0.5);
}

TEST(OperatorsTest, SelectionErrors) {
  EXPECT_FALSE(
      Select(Pairs(), {Condition::WithConstant(9, "Eq", Value(int64_t{1}))})
          .ok());
  EXPECT_FALSE(
      Select(Pairs(), {Condition::WithConstant(0, "Bogus", Value(int64_t{1}))})
          .ok());
  EXPECT_FALSE(Select(Pairs(), {Condition::WithColumn(0, "Eq", 9)}).ok());
}

TEST(OperatorsTest, CrossProductMultiplies) {
  ProbRelation left(1);
  ASSERT_TRUE(left.Insert(U(1), 0.5).ok());
  ProbRelation right(1);
  ASSERT_TRUE(right.Insert(U(2), 0.5).ok());
  ASSERT_TRUE(right.Insert(U(3), 1.0).ok());
  auto product = CrossProduct(left, right);
  ASSERT_TRUE(product.ok());
  EXPECT_EQ(product->arity(), 2u);
  EXPECT_EQ(product->size(), 2u);
  EXPECT_DOUBLE_EQ(*product->ConfidenceOf(T2(1, 2)), 0.25);
  EXPECT_DOUBLE_EQ(*product->ConfidenceOf(T2(1, 3)), 0.5);
}

TEST(OperatorsTest, EquiJoinCombinesAndProjectsJoinColumns) {
  ProbRelation left(2);
  ASSERT_TRUE(left.Insert(T2(1, 10), 0.5).ok());
  ASSERT_TRUE(left.Insert(T2(2, 20), 1.0).ok());
  ProbRelation right(2);
  ASSERT_TRUE(right.Insert(T2(10, 100), 0.5).ok());
  ASSERT_TRUE(right.Insert(T2(30, 300), 1.0).ok());
  auto joined = EquiJoin(left, right, {{1, 0}});
  ASSERT_TRUE(joined.ok());
  // Output columns: left.0, left.1, right.1 — join column deduplicated.
  EXPECT_EQ(joined->arity(), 3u);
  ASSERT_EQ(joined->size(), 1u);
  const auto& [tuple, confidence] = *joined->entries().begin();
  EXPECT_EQ(tuple, (Tuple{Value(int64_t{1}), Value(int64_t{10}),
                          Value(int64_t{100})}));
  EXPECT_DOUBLE_EQ(confidence, 0.25);
}

TEST(OperatorsTest, UnionUsesIndependentOr) {
  ProbRelation left(1);
  ASSERT_TRUE(left.Insert(U(1), 0.5).ok());
  ASSERT_TRUE(left.Insert(U(2), 0.5).ok());
  ProbRelation right(1);
  ASSERT_TRUE(right.Insert(U(2), 0.5).ok());
  auto combined = Union(left, right);
  ASSERT_TRUE(combined.ok());
  EXPECT_DOUBLE_EQ(*combined->ConfidenceOf(U(1)), 0.5);
  EXPECT_DOUBLE_EQ(*combined->ConfidenceOf(U(2)), 0.75);
  ProbRelation mismatched(2);
  EXPECT_FALSE(Union(left, mismatched).ok());
}

TEST(OperatorsTest, DeterministicCounterpartsAgreeOnSupport) {
  // Any Definition 5.1 operator applied to confidence-1 inputs must give
  // exactly the deterministic result with confidence 1.
  Relation base = {T2(1, 10), T2(1, 20), T2(2, 10)};
  const ProbRelation lifted = ProbRelation::FromRelation(base, 2);

  auto prob_proj = Project(lifted, {0});
  auto det_proj = ProjectRelation(base, 2, {0});
  ASSERT_TRUE(prob_proj.ok() && det_proj.ok());
  EXPECT_EQ(prob_proj->size(), det_proj->size());
  for (const Tuple& tuple : *det_proj) {
    EXPECT_DOUBLE_EQ(*prob_proj->ConfidenceOf(tuple), 1.0);
  }

  const std::vector<Condition> conds = {
      Condition::WithConstant(1, "Eq", Value(int64_t{10}))};
  auto prob_sel = Select(lifted, conds);
  auto det_sel = SelectRelation(base, conds);
  ASSERT_TRUE(prob_sel.ok() && det_sel.ok());
  EXPECT_EQ(prob_sel->size(), det_sel->size());

  const Relation other = {U(7)};
  auto prob_prod = CrossProduct(lifted, ProbRelation::FromRelation(other, 1));
  const Relation det_prod = CrossProductRelation(base, other);
  ASSERT_TRUE(prob_prod.ok());
  EXPECT_EQ(prob_prod->size(), det_prod.size());
}

TEST(OperatorsTest, DeterministicJoinAndUnion) {
  Relation left = {T2(1, 10), T2(2, 20)};
  Relation right = {T2(10, 100)};
  auto joined = EquiJoinRelation(left, 2, right, 2, {{1, 0}});
  ASSERT_TRUE(joined.ok());
  ASSERT_EQ(joined->size(), 1u);
  EXPECT_EQ(*joined->begin(), (Tuple{Value(int64_t{1}), Value(int64_t{10}),
                                     Value(int64_t{100})}));
  const Relation united = UnionRelation({U(1)}, {U(1), U(2)});
  EXPECT_EQ(united.size(), 2u);
}

TEST(ConditionTest, ToStringReadable) {
  EXPECT_EQ(Condition::WithConstant(0, "Eq", Value("x")).ToString(),
            "Eq($0, \"x\")");
  EXPECT_EQ(Condition::WithColumn(1, "Lt", 2).ToString(), "Lt($1, $2)");
}

}  // namespace
}  // namespace psc
