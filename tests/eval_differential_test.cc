// Differential property tests: the compiled slot-based evaluation engine
// (query_plan.h) must be observably identical to the legacy nested-loop
// interpreter on randomly generated query/database pairs — including
// built-in-heavy queries, Cartesian products, evaluation under database
// mutation (index invalidation) and the QuerySystem surface at different
// thread counts. Seeds are printed on failure for replay.

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "psc/core/query_system.h"
#include "psc/relational/conjunctive_query.h"
#include "psc/relational/database.h"
#include "psc/relational/query_plan.h"
#include "psc/util/random.h"
#include "test_util.h"

namespace psc {
namespace {

using testing::MakeUnaryCollection;
using testing::MakeUnarySource;
using testing::Q;

class EvalDifferentialTest : public ::testing::Test {
 protected:
  void SetUp() override {
    eval::SetCompiledEvalEnabled(true);
    eval::ClearQueryPlanCache();
  }
  void TearDown() override {
    eval::SetCompiledEvalEnabled(true);
    eval::ClearQueryPlanCache();
  }
};

constexpr const char* kBuiltins[] = {"Lt", "Le", "Gt", "Ge",
                                     "Eq", "Ne", "After", "Before"};

struct RandomInstance {
  ConjunctiveQuery query;
  Database db;
};

/// A random conjunctive query over relations R0/R1/R2 (arities 1/2/3) with
/// `num_atoms` relational atoms and up to `num_builtins` built-in filters,
/// plus a database sized so at least one relation crosses the indexing
/// threshold. Construction guarantees safety/range-restriction, so Create
/// always succeeds.
RandomInstance MakeRandomInstance(Rng& rng, size_t num_atoms,
                                  size_t num_builtins, int64_t domain,
                                  size_t tuples_per_relation) {
  const size_t kArity[] = {1, 2, 3};
  const std::vector<std::string> vars = {"a", "b", "c", "d", "e", "f"};

  std::vector<Atom> body;
  std::vector<std::string> bound;  // variables occurring in relational atoms
  for (size_t i = 0; i < num_atoms; ++i) {
    const size_t rel = static_cast<size_t>(rng.UniformInt(0, 2));
    std::vector<Term> terms;
    for (size_t p = 0; p < kArity[rel]; ++p) {
      if (rng.Bernoulli(0.15)) {
        terms.push_back(Term::ConstInt(rng.UniformInt(0, domain - 1)));
      } else {
        const std::string& v =
            vars[static_cast<size_t>(rng.UniformInt(0, 5))];
        terms.push_back(Term::Var(v));
        bound.push_back(v);
      }
    }
    // Guarantee at least one variable somewhere so the head is non-trivial.
    if (bound.empty() && i + 1 == num_atoms) {
      terms.back() = Term::Var(vars[0]);
      bound.push_back(vars[0]);
    }
    body.emplace_back("R" + std::to_string(rel), std::move(terms));
  }

  for (size_t i = 0; i < num_builtins && !bound.empty(); ++i) {
    const std::string pred =
        kBuiltins[static_cast<size_t>(rng.UniformInt(0, 7))];
    auto arg = [&]() -> Term {
      if (rng.Bernoulli(0.4))
        return Term::ConstInt(rng.UniformInt(0, domain - 1));
      return Term::Var(
          bound[static_cast<size_t>(rng.UniformInt(
              0, static_cast<int64_t>(bound.size()) - 1))]);
    };
    body.emplace_back(pred, std::vector<Term>{arg(), arg()});
  }

  // Head: 1–3 bound variables (duplicates allowed — exercises repeated
  // head variables), or a constant head when nothing is bound.
  std::vector<Term> head_terms;
  if (bound.empty()) {
    head_terms.push_back(Term::ConstInt(0));
  } else {
    const int64_t head_arity = rng.UniformInt(1, 3);
    for (int64_t i = 0; i < head_arity; ++i) {
      head_terms.push_back(Term::Var(
          bound[static_cast<size_t>(rng.UniformInt(
              0, static_cast<int64_t>(bound.size()) - 1))]));
    }
  }

  auto query = ConjunctiveQuery::Create(Atom("V", std::move(head_terms)),
                                        std::move(body));
  EXPECT_TRUE(query.ok()) << query.status().ToString();

  Database db;
  for (size_t rel = 0; rel < 3; ++rel) {
    for (size_t t = 0; t < tuples_per_relation; ++t) {
      Tuple tuple;
      for (size_t p = 0; p < kArity[rel]; ++p) {
        tuple.push_back(Value(rng.UniformInt(0, domain - 1)));
      }
      db.AddFact("R" + std::to_string(rel), std::move(tuple));
    }
  }
  return {std::move(query).ValueOrDie(), std::move(db)};
}

/// All valuations enumerated for (query, db, initial), as a canonical set.
std::set<Valuation> CollectValuations(const ConjunctiveQuery& query,
                                      const Database& db,
                                      const Valuation& initial) {
  std::set<Valuation> out;
  auto status = query.ForEachValuation(db, initial, [&](const Valuation& v) {
    out.insert(v);
    return true;
  });
  EXPECT_TRUE(status.ok()) << status.status().ToString();
  return out;
}

/// Asserts compiled and legacy agree on Evaluate and on the valuation set,
/// with and without an initial binding.
void ExpectEnginesAgree(const ConjunctiveQuery& query, const Database& db,
                        const Valuation& initial, uint64_t seed) {
  eval::SetCompiledEvalEnabled(true);
  auto compiled_eval = query.Evaluate(db);
  const auto compiled_vals = CollectValuations(query, db, {});
  const auto compiled_bound = CollectValuations(query, db, initial);

  eval::SetCompiledEvalEnabled(false);
  auto legacy_eval = query.Evaluate(db);
  const auto legacy_vals = CollectValuations(query, db, {});
  const auto legacy_bound = CollectValuations(query, db, initial);
  eval::SetCompiledEvalEnabled(true);

  ASSERT_TRUE(compiled_eval.ok()) << compiled_eval.status().ToString();
  ASSERT_TRUE(legacy_eval.ok()) << legacy_eval.status().ToString();
  EXPECT_EQ(*compiled_eval, *legacy_eval)
      << "Evaluate mismatch, seed=" << seed << " query=" << query.ToString();
  EXPECT_EQ(compiled_vals, legacy_vals)
      << "valuation mismatch, seed=" << seed << " query=" << query.ToString();
  EXPECT_EQ(compiled_bound, legacy_bound)
      << "bound-valuation mismatch, seed=" << seed
      << " query=" << query.ToString();
}

TEST_F(EvalDifferentialTest, HundredRandomInstancesAgree) {
  constexpr uint64_t kBaseSeed = 0x5eed0001;
  for (uint64_t round = 0; round < 100; ++round) {
    const uint64_t seed = MixSeed(kBaseSeed, round);
    Rng rng(seed);
    SCOPED_TRACE("round=" + std::to_string(round) +
                 " seed=" + std::to_string(seed));
    // Mix sizes: some databases well above the indexing threshold, some
    // below (scan path), domains tight enough to make joins selective.
    const size_t num_atoms = static_cast<size_t>(rng.UniformInt(1, 3));
    const size_t num_builtins = static_cast<size_t>(rng.UniformInt(0, 2));
    const int64_t domain = rng.UniformInt(3, 8);
    const size_t tuples = static_cast<size_t>(rng.UniformInt(4, 40));
    auto instance =
        MakeRandomInstance(rng, num_atoms, num_builtins, domain, tuples);

    Valuation initial;
    const auto query_vars = instance.query.Variables();
    if (!query_vars.empty() && rng.Bernoulli(0.5)) {
      initial[*query_vars.begin()] = Value(rng.UniformInt(0, domain - 1));
    }
    initial["extra_var"] = Value("passthrough");

    ExpectEnginesAgree(instance.query, instance.db, initial, seed);
  }
}

TEST_F(EvalDifferentialTest, BuiltinHeavyInstancesAgree) {
  constexpr uint64_t kBaseSeed = 0x5eed0002;
  for (uint64_t round = 0; round < 25; ++round) {
    const uint64_t seed = MixSeed(kBaseSeed, round);
    Rng rng(seed);
    SCOPED_TRACE("round=" + std::to_string(round) +
                 " seed=" + std::to_string(seed));
    // More built-ins than relational atoms: hoisting and ground filters
    // dominate the plan.
    auto instance = MakeRandomInstance(rng, /*num_atoms=*/2,
                                       /*num_builtins=*/4, /*domain=*/6,
                                       /*tuples_per_relation=*/24);
    ExpectEnginesAgree(instance.query, instance.db, {}, seed);
  }
}

TEST_F(EvalDifferentialTest, CartesianProductsAgree) {
  // Disjoint variable sets defeat the join-ordering heuristic entirely;
  // the engines must still enumerate the same product.
  Database db;
  for (int64_t i = 0; i < 20; ++i) {
    db.AddFact("R0", {Value(i)});
    db.AddFact("R1", {Value(i), Value(i + 100)});
  }
  for (const char* text : {
           "V(x, y) <- R0(x), R1(y, z)",
           "V(x, y, z) <- R0(x), R0(y), R0(z), Before(x, y), Before(y, z)",
           "V(x, w) <- R1(x, y), R1(z, w)",
       }) {
    SCOPED_TRACE(text);
    ExpectEnginesAgree(Q(text), db, {}, 0);
  }
}

TEST_F(EvalDifferentialTest, MutationSequenceKeepsEnginesInAgreement) {
  constexpr uint64_t kSeed = 0x5eed0003;
  Rng rng(kSeed);
  auto instance = MakeRandomInstance(rng, /*num_atoms=*/2, /*num_builtins=*/1,
                                     /*domain=*/6, /*tuples_per_relation=*/32);
  // Interleave evaluations with mutations: every evaluation after a
  // mutation must see the new facts (stale indexes would diverge from the
  // legacy interpreter, which scans fresh state every time).
  for (int step = 0; step < 12; ++step) {
    SCOPED_TRACE("mutation step " + std::to_string(step));
    ExpectEnginesAgree(instance.query, instance.db, {}, kSeed);
    const std::string rel = "R" + std::to_string(rng.UniformInt(0, 2));
    const size_t arity = rel == "R0" ? 1 : rel == "R1" ? 2 : 3;
    Tuple tuple;
    for (size_t p = 0; p < arity; ++p)
      tuple.push_back(Value(rng.UniformInt(0, 5)));
    if (rng.Bernoulli(0.3)) {
      instance.db.RemoveFact(Fact(rel, tuple));
    } else {
      instance.db.AddFact(rel, tuple);
    }
  }
}

TEST_F(EvalDifferentialTest, QuerySystemIdenticalAcrossEnginesAndThreads) {
  // End-to-end: exact answers (confidences, certain, possible) must be
  // bit-identical across {compiled, legacy} × {1 thread, 4 threads}.
  auto make_collection = [] {
    // Known-satisfiable measures (same shape as the obs integration test).
    return MakeUnaryCollection(
        {MakeUnarySource("S1", {0, 1}, "1/2", "1/2"),
         MakeUnarySource("S2", {1, 2}, "1/2", "1/2")});
  };
  const auto domain = testing::IntDomain(3);
  const auto query = Q("V(x, y) <- R(x), R(y), Before(x, y)");

  std::vector<QueryAnswer> answers;
  for (const bool compiled : {true, false}) {
    for (const size_t threads : {size_t{1}, size_t{4}}) {
      QuerySystem::Options options;
      options.use_compiled_eval = compiled;
      options.threads = threads;
      PSC_ASSERT_OK_AND_ASSIGN(
          auto system, QuerySystem::Create(make_collection(), options));
      PSC_ASSERT_OK_AND_ASSIGN(auto answer,
                               system.AnswerExact(query, domain));
      answers.push_back(std::move(answer));
    }
  }
  eval::SetCompiledEvalEnabled(true);

  for (size_t i = 1; i < answers.size(); ++i) {
    SCOPED_TRACE("configuration " + std::to_string(i));
    EXPECT_EQ(answers[i].certain, answers[0].certain);
    EXPECT_EQ(answers[i].possible, answers[0].possible);
    EXPECT_EQ(answers[i].confidences.entries(), answers[0].confidences.entries());
    EXPECT_EQ(answers[i].worlds_used, answers[0].worlds_used);
  }
}

}  // namespace
}  // namespace psc
