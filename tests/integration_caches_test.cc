// End-to-end: the Section 6 cache/mirror application. Identity views over
// a set of objects; confidence ranks live objects above stale ones.

#include "gtest/gtest.h"
#include "psc/core/query_system.h"
#include "psc/counting/confidence.h"
#include "psc/counting/world_sampler.h"
#include "psc/workload/cache_workload.h"
#include "test_util.h"

namespace psc {
namespace {

TEST(CacheIntegrationTest, ConfidenceSeparatesSharedFromStaleEntries) {
  CacheConfig config;
  config.num_objects = 10;
  config.num_caches = 3;
  config.coverage = 0.8;
  config.staleness = 0.2;
  config.seed = 7;
  auto workload = MakeCacheWorkload(config);
  ASSERT_TRUE(workload.ok());

  auto instance =
      IdentityInstance::CreateOverExtensions(workload->collection);
  ASSERT_TRUE(instance.ok());
  auto table = ComputeBaseFactConfidences(*instance, uint64_t{1} << 28);
  ASSERT_TRUE(table.ok()) << table.status().ToString();

  // Average confidence of entries cached by >= 2 caches vs single-cache
  // entries: multiply-cached objects must rank strictly higher.
  double multi_sum = 0;
  int multi_n = 0;
  double single_sum = 0;
  int single_n = 0;
  for (const TupleConfidence& entry : table->entries) {
    auto group = instance->GroupIndexOf(entry.tuple);
    ASSERT_TRUE(group.ok());
    const int owners =
        __builtin_popcountll(instance->groups()[*group].signature);
    if (owners >= 2) {
      multi_sum += entry.confidence;
      ++multi_n;
    } else {
      single_sum += entry.confidence;
      ++single_n;
    }
  }
  ASSERT_GT(multi_n, 0);
  ASSERT_GT(single_n, 0);
  EXPECT_GT(multi_sum / multi_n, single_sum / single_n);
}

TEST(CacheIntegrationTest, FacadeAnswersMembershipQueries) {
  CacheConfig config;
  config.num_objects = 8;
  config.num_caches = 2;
  config.coverage = 0.75;
  config.staleness = 0.0;
  config.seed = 11;
  auto workload = MakeCacheWorkload(config);
  ASSERT_TRUE(workload.ok());
  auto system = QuerySystem::Create(workload->collection);
  ASSERT_TRUE(system.ok());

  // Domain: live objects plus the potential stale range.
  std::vector<Value> domain;
  for (int64_t id = 0; id < 2 * config.num_objects; ++id) {
    domain.push_back(Value(id));
  }
  auto answer = system->AnswerExact(AlgebraExpr::Base("Object", 1), domain);
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  EXPECT_GT(answer->worlds_used, 0u);
  // With zero staleness every cached entry is live; live ids must carry
  // all of the possible-answer mass that is backed by a cache.
  for (const Tuple& tuple : answer->possible) {
    auto confidence = answer->confidences.ConfidenceOf(tuple);
    ASSERT_TRUE(confidence.ok());
    EXPECT_GT(*confidence, 0.0);
  }
}

TEST(CacheIntegrationTest, MonteCarloHandlesLargerCaches) {
  CacheConfig config;
  config.num_objects = 60;
  config.num_caches = 3;
  config.coverage = 0.5;
  config.staleness = 0.1;
  config.seed = 13;
  auto workload = MakeCacheWorkload(config);
  ASSERT_TRUE(workload.ok());
  auto instance =
      IdentityInstance::CreateOverExtensions(workload->collection);
  ASSERT_TRUE(instance.ok());
  auto sampler = WorldSampler::Create(&*instance, uint64_t{1} << 22);
  ASSERT_TRUE(sampler.ok()) << sampler.status().ToString();
  Rng rng(21);
  for (int i = 0; i < 20; ++i) {
    const Database world = sampler->Sample(&rng);
    auto ok = workload->collection.IsPossibleWorld(world);
    ASSERT_TRUE(ok.ok());
    EXPECT_TRUE(*ok);
  }
}

}  // namespace
}  // namespace psc
