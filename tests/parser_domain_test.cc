// Tests for ParseDomainList, the parser behind the CLI's --domain flag.
// The regression of note: out-of-range integer tokens used to saturate to
// INT64_MAX / INT64_MIN via strtoll instead of falling back to strings.

#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "psc/parser/parser.h"
#include "psc/relational/value.h"

namespace psc {
namespace {

TEST(ParseDomainListTest, MixedIntegersAndStrings) {
  const std::vector<Value> domain = ParseDomainList("1,2,abc");
  ASSERT_EQ(domain.size(), 3u);
  EXPECT_EQ(domain[0], Value(int64_t{1}));
  EXPECT_EQ(domain[1], Value(int64_t{2}));
  EXPECT_EQ(domain[2], Value("abc"));
}

TEST(ParseDomainListTest, WhitespaceIsTrimmedAndEmptyTokensDropped) {
  const std::vector<Value> domain = ParseDomainList(" 1 , , x ,,2 ");
  ASSERT_EQ(domain.size(), 3u);
  EXPECT_EQ(domain[0], Value(int64_t{1}));
  EXPECT_EQ(domain[1], Value("x"));
  EXPECT_EQ(domain[2], Value(int64_t{2}));
}

TEST(ParseDomainListTest, NegativeIntegers) {
  const std::vector<Value> domain = ParseDomainList("-7,-0");
  ASSERT_EQ(domain.size(), 2u);
  EXPECT_EQ(domain[0], Value(int64_t{-7}));
  EXPECT_EQ(domain[1], Value(int64_t{0}));
}

TEST(ParseDomainListTest, Int64BoundsStillParseAsIntegers) {
  const std::vector<Value> domain =
      ParseDomainList("9223372036854775807,-9223372036854775808");
  ASSERT_EQ(domain.size(), 2u);
  EXPECT_EQ(domain[0], Value(int64_t{INT64_MAX}));
  EXPECT_EQ(domain[1], Value(int64_t{INT64_MIN}));
}

TEST(ParseDomainListTest, OutOfRangeIntegersBecomeStrings) {
  // strtoll saturates these with errno = ERANGE; they must stay strings,
  // not silently collapse to INT64_MAX / INT64_MIN.
  const std::vector<Value> domain =
      ParseDomainList("99999999999999999999,-99999999999999999999");
  ASSERT_EQ(domain.size(), 2u);
  EXPECT_EQ(domain[0], Value("99999999999999999999"));
  EXPECT_EQ(domain[1], Value("-99999999999999999999"));
}

TEST(ParseDomainListTest, PartialNumbersAreStrings) {
  const std::vector<Value> domain = ParseDomainList("12ab,0x10,1.5");
  ASSERT_EQ(domain.size(), 3u);
  EXPECT_EQ(domain[0], Value("12ab"));
  EXPECT_EQ(domain[1], Value("0x10"));
  EXPECT_EQ(domain[2], Value("1.5"));
}

TEST(ParseDomainListTest, EmptyInputYieldsEmptyDomain) {
  EXPECT_TRUE(ParseDomainList("").empty());
  EXPECT_TRUE(ParseDomainList(" , ,").empty());
}

}  // namespace
}  // namespace psc
