// Unit tests for the compiled query-evaluation layer (query_plan.h /
// eval_index.h): join ordering, slot assignment, built-in hoisting, the
// plan memo cache, lazy index construction and generation-based
// invalidation. Differential compiled-vs-legacy coverage lives in
// eval_differential_test.cc.

#include "psc/relational/query_plan.h"

#include <algorithm>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "psc/obs/metrics.h"
#include "psc/relational/conjunctive_query.h"
#include "psc/relational/database.h"
#include "psc/relational/eval_index.h"
#include "test_util.h"

namespace psc {
namespace {

using testing::Q;

class EvalPlanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    eval::SetCompiledEvalEnabled(true);
    eval::ClearQueryPlanCache();
    obs::GlobalMetrics().Reset();
  }
  void TearDown() override {
    eval::SetCompiledEvalEnabled(true);
    eval::ClearQueryPlanCache();
    obs::GlobalMetrics().Reset();
  }

  /// Evaluates `query` on `db` with both engines and returns the (asserted
  /// equal) result.
  Relation BothEngines(const ConjunctiveQuery& query, const Database& db) {
    eval::SetCompiledEvalEnabled(true);
    auto compiled = query.Evaluate(db);
    EXPECT_TRUE(compiled.ok()) << compiled.status().ToString();
    eval::SetCompiledEvalEnabled(false);
    auto legacy = query.Evaluate(db);
    EXPECT_TRUE(legacy.ok()) << legacy.status().ToString();
    eval::SetCompiledEvalEnabled(true);
    EXPECT_EQ(*compiled, *legacy) << "engines disagree on " << query.ToString();
    return std::move(compiled).ValueOrDie();
  }
};

TEST_F(EvalPlanTest, GreedyJoinOrderStartsAtConstantsThenFollowsBindings) {
  // T(x, 7) has a constant, so it goes first; that binds x, making
  // R(x, z) the next most-bound atom; S(z, y) joins last on z.
  const auto query = Q("V(y) <- R(x, z), S(z, y), T(x, 7)");
  const auto plan = eval::QueryPlan::Compile(query, {});
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(plan->num_slots(), 3u);  // x, z, y
  EXPECT_EQ(plan->join_order(), (std::vector<size_t>{2, 0, 1}));
  // Every step arrives with at least one bound position.
  EXPECT_EQ(plan->num_probe_steps(), 3u);
}

TEST_F(EvalPlanTest, TieBreaksPreserveOriginalAtomOrder) {
  // No constants and no shared variables: nothing to distinguish the
  // atoms, so the plan must keep the written order (determinism).
  const auto plan =
      eval::QueryPlan::Compile(Q("V(x, y, z) <- A(x), B(y), C(z)"), {});
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(plan->join_order(), (std::vector<size_t>{0, 1, 2}));
  EXPECT_EQ(plan->num_probe_steps(), 0u);  // pure Cartesian: all scans
}

TEST_F(EvalPlanTest, PreboundVariablesCountAsBoundFromStepZero) {
  // With y prebound, S(y, z) is the most-bound atom even though it is
  // written second.
  const auto query = Q("V(x, z) <- R(x), S(y, z), T(x, y)");
  const auto unbound = eval::QueryPlan::Compile(query, {});
  const auto bound = eval::QueryPlan::Compile(query, {"y"});
  ASSERT_NE(unbound, nullptr);
  ASSERT_NE(bound, nullptr);
  EXPECT_EQ(unbound->join_order().front(), 0u);
  EXPECT_EQ(bound->join_order().front(), 1u);
  EXPECT_GT(bound->num_probe_steps(), 0u);
}

TEST_F(EvalPlanTest, BuiltinsHoistToEarliestBoundStep) {
  // After(x, 5) only needs x, which step 0 binds; the legacy interpreter
  // would discover it after the full join. DebugString is the designated
  // introspection surface for hoisting.
  const auto plan =
      eval::QueryPlan::Compile(Q("V(x, y) <- R(x), S(y), After(x, 5)"), {});
  ASSERT_NE(plan, nullptr);
  const std::string debug = plan->DebugString();
  EXPECT_NE(debug.find("builtin@1"), std::string::npos) << debug;
  EXPECT_EQ(debug.find("builtin@2"), std::string::npos) << debug;
}

TEST_F(EvalPlanTest, GroundBuiltinsRunBeforeAnyJoinStep) {
  const auto plan =
      eval::QueryPlan::Compile(Q("V(x) <- R(x), After(9, 5)"), {});
  ASSERT_NE(plan, nullptr);
  EXPECT_NE(plan->DebugString().find("builtin@0"), std::string::npos)
      << plan->DebugString();

  // And a false ground built-in empties the result without touching R.
  Database db;
  db.AddFact("R", {Value(int64_t{1})});
  const auto query = Q("V(x) <- R(x), After(1, 5)");
  const auto result = query.Evaluate(db);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->empty());
}

TEST_F(EvalPlanTest, EvaluateMatchesLegacyOnJoinsConstantsAndRepeatedVars) {
  Database db;
  for (int64_t i = 0; i < 6; ++i) {
    db.AddFact("E", {Value(i), Value((i + 1) % 6)});
    db.AddFact("E", {Value(i), Value(i)});
    db.AddFact("L", {Value(i), Value("n" + std::to_string(i % 2))});
  }
  for (const char* text : {
           "V(x, z) <- E(x, y), E(y, z)",
           "V(x) <- E(x, x)",
           "V(y) <- E(2, y)",
           "V(x, n) <- E(x, y), L(y, n)",
           "V(x, n) <- E(x, y), L(y, n), Eq(n, \"n1\")",
           "V(x, y) <- E(x, y), Before(x, y)",
       }) {
    const Relation result = BothEngines(Q(text), db);
    if (std::string(text) == "V(x) <- E(x, x)") {
      EXPECT_EQ(result.size(), 6u);
    }
  }
}

TEST_F(EvalPlanTest, ForEachPassesNonQueryBindingsThrough) {
  Database db;
  db.AddFact("R", {Value(int64_t{1})});
  db.AddFact("R", {Value(int64_t{2})});
  const auto query = Q("V(x) <- R(x)");
  Valuation initial;
  initial["foreign"] = Value("keep-me");
  std::vector<Valuation> seen;
  auto ok = query.ForEachValuation(db, initial, [&](const Valuation& v) {
    seen.push_back(v);
    return true;
  });
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  ASSERT_EQ(seen.size(), 2u);
  for (const Valuation& v : seen) {
    ASSERT_EQ(v.count("foreign"), 1u);
    EXPECT_EQ(v.at("foreign"), Value("keep-me"));
    EXPECT_EQ(v.count("x"), 1u);
  }
}

TEST_F(EvalPlanTest, ForEachHonorsInitialQueryVariableBindings) {
  Database db;
  for (int64_t i = 0; i < 4; ++i)
    db.AddFact("E", {Value(i), Value(i + 10)});
  const auto query = Q("V(x, y) <- E(x, y)");
  Valuation initial;
  initial["x"] = Value(int64_t{2});
  size_t count = 0;
  auto ok = query.ForEachValuation(db, initial, [&](const Valuation& v) {
    EXPECT_EQ(v.at("x"), Value(int64_t{2}));
    EXPECT_EQ(v.at("y"), Value(int64_t{12}));
    ++count;
    return true;
  });
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(count, 1u);
}

TEST_F(EvalPlanTest, ForEachEarlyStopReturnsFalse) {
  Database db;
  for (int64_t i = 0; i < 8; ++i) db.AddFact("R", {Value(i)});
  const auto query = Q("V(x) <- R(x)");
  size_t count = 0;
  auto stopped = query.ForEachValuation(db, {}, [&](const Valuation&) {
    return ++count < 3;
  });
  ASSERT_TRUE(stopped.ok()) << stopped.status().ToString();
  EXPECT_FALSE(*stopped);
  EXPECT_EQ(count, 3u);
}

TEST_F(EvalPlanTest, WitnessValuationsSortedAndEngineIndependent) {
  Database db;
  for (int64_t i = 0; i < 5; ++i) {
    db.AddFact("E", {Value(i), Value(int64_t{42})});
  }
  const auto query = Q("V(y) <- E(x, y)");
  const Tuple target{Value(int64_t{42})};

  eval::SetCompiledEvalEnabled(true);
  auto compiled = query.WitnessValuations(db, target);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  eval::SetCompiledEvalEnabled(false);
  auto legacy = query.WitnessValuations(db, target);
  ASSERT_TRUE(legacy.ok()) << legacy.status().ToString();

  EXPECT_EQ(*compiled, *legacy);
  EXPECT_TRUE(std::is_sorted(compiled->begin(), compiled->end()));
  EXPECT_EQ(compiled->size(), 5u);
}

TEST_F(EvalPlanTest, PlanCacheMemoizesByQueryAndBoundSet) {
  const auto query = Q("V(x, y) <- E(x, y)");
  EXPECT_EQ(eval::QueryPlanCacheSize(), 0u);
  const auto p1 = eval::GetOrCompilePlan(query, {});
  const auto p2 = eval::GetOrCompilePlan(query, {});
  EXPECT_EQ(p1.get(), p2.get());
  EXPECT_EQ(eval::QueryPlanCacheSize(), 1u);

  // A different bound-variable set is a different plan...
  Valuation bound;
  bound["x"] = Value(int64_t{0});
  const auto p3 = eval::GetOrCompilePlan(query, bound);
  EXPECT_NE(p1.get(), p3.get());
  EXPECT_EQ(eval::QueryPlanCacheSize(), 2u);

  // ...but non-query variables do not perturb the key.
  Valuation foreign;
  foreign["not_in_query"] = Value(int64_t{0});
  EXPECT_EQ(eval::GetOrCompilePlan(query, foreign).get(), p1.get());
  EXPECT_EQ(eval::QueryPlanCacheSize(), 2u);

  eval::ClearQueryPlanCache();
  EXPECT_EQ(eval::QueryPlanCacheSize(), 0u);
}

/// Builds a chain database large enough that the evaluator indexes it
/// (every relation well above kMinIndexedRelationSize).
Database ChainDb(int64_t n) {
  Database db;
  for (int64_t i = 0; i < n; ++i) {
    db.AddFact("E", {Value(i), Value((i + 1) % n)});
  }
  return db;
}

TEST_F(EvalPlanTest, IndexCacheIsLazyAndSharedAcrossEvaluations) {
  const Database db = ChainDb(64);
  const auto query = Q("V(x, z) <- E(x, y), E(y, z)");

  PSC_ASSERT_OK_AND_ASSIGN(const Relation r1, query.Evaluate(db));
  const size_t entries_after_first = db.index_cache().size();
  EXPECT_GT(entries_after_first, 0u);

  // Re-evaluating reuses the cached index: same entry count, same result.
  PSC_ASSERT_OK_AND_ASSIGN(const Relation r2, query.Evaluate(db));
  EXPECT_EQ(db.index_cache().size(), entries_after_first);
  EXPECT_EQ(r1, r2);
  EXPECT_EQ(r1.size(), 64u);
}

TEST_F(EvalPlanTest, MutationInvalidatesIndexesViaGeneration) {
  Database db = ChainDb(32);
  const auto query = Q("V(x, z) <- E(x, y), E(y, z)");
  const uint64_t gen_before = db.generation();

  PSC_ASSERT_OK_AND_ASSIGN(const Relation before, query.Evaluate(db));
  EXPECT_EQ(before.size(), 32u);

  // A genuinely new fact bumps the generation; re-inserting an existing
  // fact must not (the cached indexes stay valid).
  ASSERT_FALSE(db.AddFact("E", {Value(int64_t{0}), Value(int64_t{1})}));
  EXPECT_EQ(db.generation(), gen_before);
  ASSERT_TRUE(db.AddFact("E", {Value(int64_t{0}), Value(int64_t{16})}));
  EXPECT_GT(db.generation(), gen_before);

  // The stale index must not be probed: the new edge creates new paths.
  PSC_ASSERT_OK_AND_ASSIGN(const Relation after, query.Evaluate(db));
  EXPECT_GT(after.size(), before.size());
  EXPECT_TRUE(after.count({Value(int64_t{0}), Value(int64_t{17})}));

  // And removal invalidates too.
  ASSERT_TRUE(db.RemoveFact(Fact("E", {Value(int64_t{0}), Value(int64_t{16})})));
  PSC_ASSERT_OK_AND_ASSIGN(const Relation reverted, query.Evaluate(db));
  EXPECT_EQ(reverted, before);
}

TEST_F(EvalPlanTest, TinyRelationsAreScannedNotIndexed) {
  // Below kMinIndexedRelationSize no index is built even though the plan
  // has probe steps.
  Database db = ChainDb(static_cast<int64_t>(eval::kMinIndexedRelationSize) - 2);
  const auto query = Q("V(x, z) <- E(x, y), E(y, z)");
  PSC_ASSERT_OK_AND_ASSIGN(const Relation r, query.Evaluate(db));
  EXPECT_EQ(r.size(), eval::kMinIndexedRelationSize - 2);
  EXPECT_EQ(db.index_cache().size(), 0u);
}

TEST_F(EvalPlanTest, CopyDoesNotCarryTheIndexCache) {
  const Database db = ChainDb(32);
  const auto query = Q("V(x, z) <- E(x, y), E(y, z)");
  PSC_ASSERT_OK_AND_ASSIGN(const Relation r1, query.Evaluate(db));
  EXPECT_GT(db.index_cache().size(), 0u);

  const Database copy = db;  // NOLINT(performance-unnecessary-copy-initialization)
  EXPECT_EQ(copy.index_cache().size(), 0u);
  PSC_ASSERT_OK_AND_ASSIGN(const Relation r2, query.Evaluate(copy));
  EXPECT_EQ(r1, r2);
}

#if PSC_OBS_ENABLED

TEST_F(EvalPlanTest, ObsCountersTrackPlansIndexesAndProbes) {
  const Database db = ChainDb(64);
  const auto query = Q("V(x, z) <- E(x, y), E(y, z)");
  auto& metrics = obs::GlobalMetrics();

  PSC_ASSERT_OK_AND_ASSIGN(const Relation r1, query.Evaluate(db));
  EXPECT_EQ(metrics.CounterValue("eval.plan_cache.misses"), 1u);
  EXPECT_EQ(metrics.CounterValue("eval.execs.compiled"), 1u);
  const uint64_t builds = metrics.CounterValue("eval.index.builds");
  EXPECT_GT(builds, 0u);
  EXPECT_GT(metrics.CounterValue("eval.probes"), 0u);

  // Second evaluation: plan-cache hit, no new index builds.
  PSC_ASSERT_OK_AND_ASSIGN(const Relation r2, query.Evaluate(db));
  EXPECT_EQ(metrics.CounterValue("eval.plan_cache.hits"), 1u);
  EXPECT_EQ(metrics.CounterValue("eval.index.builds"), builds);
  EXPECT_GT(metrics.CounterValue("eval.index.hits"), 0u);
  EXPECT_EQ(r1, r2);
}

TEST_F(EvalPlanTest, LegacyEngineCountsItsOwnExecutions) {
  Database db;
  db.AddFact("R", {Value(int64_t{1})});
  const auto query = Q("V(x) <- R(x)");
  auto& metrics = obs::GlobalMetrics();

  eval::SetCompiledEvalEnabled(false);
  EXPECT_FALSE(eval::CompiledEvalEnabled());
  PSC_ASSERT_OK_AND_ASSIGN(const Relation r, query.Evaluate(db));
  EXPECT_EQ(r.size(), 1u);
  EXPECT_EQ(metrics.CounterValue("eval.execs.legacy"), 1u);
  EXPECT_EQ(metrics.CounterValue("eval.execs.compiled"), 0u);
}

#endif  // PSC_OBS_ENABLED

}  // namespace
}  // namespace psc
