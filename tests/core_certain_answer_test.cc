#include "psc/core/certain_answer.h"

#include "gtest/gtest.h"
#include "psc/core/query_system.h"
#include "psc/workload/random_collections.h"
#include "test_util.h"

namespace psc {
namespace {

using testing::IntDomain;
using testing::MakeUnaryCollection;
using testing::MakeUnarySource;
using testing::U;

TEST(CertainAnswerTest, ExactSourceMakesFactsCertain) {
  auto collection =
      MakeUnaryCollection({MakeUnarySource("S", {0, 1}, "1/2", "1")});
  auto bound = CertainAnswerLowerBound(collection, AlgebraExpr::Base("R", 1));
  ASSERT_TRUE(bound.ok()) << bound.status().ToString();
  EXPECT_EQ(bound->certain, (Relation{U(0), U(1)}));
  EXPECT_FALSE(bound->truncated);
}

TEST(CertainAnswerTest, PartialSoundnessYieldsNoCertainFacts) {
  // s = 1/2 on two facts: either one alone may be the sound part.
  auto collection =
      MakeUnaryCollection({MakeUnarySource("S", {0, 1}, "1/2", "1/2")});
  auto bound = CertainAnswerLowerBound(collection, AlgebraExpr::Base("R", 1));
  ASSERT_TRUE(bound.ok());
  EXPECT_TRUE(bound->certain.empty());
}

TEST(CertainAnswerTest, OverlapForcesSharedFact) {
  // Both sources fully sound; the shared fact must appear, as must all.
  auto collection =
      MakeUnaryCollection({MakeUnarySource("S1", {0, 1}, "0", "1"),
                           MakeUnarySource("S2", {1, 2}, "0", "1")});
  auto bound = CertainAnswerLowerBound(collection, AlgebraExpr::Base("R", 1));
  ASSERT_TRUE(bound.ok());
  EXPECT_EQ(bound->certain, (Relation{U(0), U(1), U(2)}));
}

TEST(CertainAnswerTest, SoundOnRandomIdentityCollections) {
  // Randomized: the template bound must be a subset of the exact certain
  // answer on every draw.
  Rng rng(31415);
  RandomIdentityConfig config;
  config.num_sources = 2;
  config.universe_size = 3;
  config.min_extension = 1;
  config.max_extension = 3;
  for (int trial = 0; trial < 25; ++trial) {
    auto collection = MakeRandomIdentityCollection(config, &rng);
    ASSERT_TRUE(collection.ok());
    auto system = QuerySystem::Create(*collection);
    ASSERT_TRUE(system.ok());
    auto plan = AlgebraExpr::Base("R", 1);
    auto exact = system->AnswerExact(plan, IntDomain(4));
    auto bound = CertainAnswerLowerBound(*collection, plan);
    if (!exact.ok()) {
      // Inconsistent draw: the certain answer is ill-defined, and the
      // bound only detects head-unification inconsistencies, so any
      // outcome is acceptable here.
      ASSERT_EQ(exact.status().code(), StatusCode::kInconsistent);
      continue;
    }
    ASSERT_TRUE(bound.ok()) << bound.status().ToString();
    // Soundness: never claim a tuple the exact semantics does not certify.
    // (The bound can be strictly smaller: a combination whose cardinality
    // constraints are unsatisfiable still participates in the
    // intersection — dropping it would need the full rep-emptiness test.)
    for (const Tuple& tuple : bound->certain) {
      EXPECT_EQ(exact->certain.count(tuple), 1u)
          << "unsound certain tuple " << TupleToString(tuple) << "\n"
          << collection->ToString();
    }
  }
}

TEST(CertainAnswerTest, WorksForJoinViewsWithoutWorldEnumeration) {
  // V(x) ← E(x, y): fully sound claim {0}. Every world has E(0, y) for
  // some y, so π₀(E) certainly contains 0 — but the witness y differs per
  // world, so π₁(E) has no certain tuple. World enumeration would need a
  // finite domain; the template bound does not.
  auto view = testing::Q("V(x) <- E(x, y)");
  auto source = SourceDescriptor::Create("S", view, {U(0)},
                                         Rational::Zero(), Rational::One());
  ASSERT_TRUE(source.ok());
  auto collection = SourceCollection::Create({*source});
  ASSERT_TRUE(collection.ok());
  auto first = CertainAnswerLowerBound(
      *collection, AlgebraExpr::Project(AlgebraExpr::Base("E", 2), {0}));
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->certain, Relation{U(0)});
  auto second = CertainAnswerLowerBound(
      *collection, AlgebraExpr::Project(AlgebraExpr::Base("E", 2), {1}));
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->certain.empty());
}

TEST(CertainAnswerTest, JoinQueryOverTwoSoundViews) {
  // A(x) ← P(x) claims {1} soundly; B(y) ← Q2(y) claims {1} soundly.
  // P ⋈ Q2 on equality certainly contains (1).
  auto view_a = testing::Q("A(x) <- P(x)");
  auto view_b = testing::Q("B(y) <- Q2(y)");
  auto source_a = SourceDescriptor::Create("SA", view_a, {U(1)},
                                           Rational::Zero(), Rational::One());
  auto source_b = SourceDescriptor::Create("SB", view_b, {U(1)},
                                           Rational::Zero(), Rational::One());
  ASSERT_TRUE(source_a.ok() && source_b.ok());
  auto collection = SourceCollection::Create({*source_a, *source_b});
  ASSERT_TRUE(collection.ok());
  auto plan = AlgebraExpr::Join(AlgebraExpr::Base("P", 1),
                                AlgebraExpr::Base("Q2", 1), {{0, 0}});
  auto bound = CertainAnswerLowerBound(*collection, plan);
  ASSERT_TRUE(bound.ok()) << bound.status().ToString();
  EXPECT_EQ(bound->certain, Relation{U(1)});
}

TEST(CertainAnswerTest, SelectionOnNullIsNeverCertain) {
  // V(x) ← E(x, y), with a selection on the existential column: the
  // join partner is a null, so After(col1, …) cannot be certain.
  auto view = testing::Q("V(x) <- E(x, y)");
  auto source = SourceDescriptor::Create("S", view, {U(0)},
                                         Rational::Zero(), Rational::One());
  ASSERT_TRUE(source.ok());
  auto collection = SourceCollection::Create({*source});
  ASSERT_TRUE(collection.ok());
  auto plan = AlgebraExpr::Project(
      AlgebraExpr::Select(AlgebraExpr::Base("E", 2),
                          {Condition::WithConstant(1, "After",
                                                   Value(int64_t{0}))}),
      {0});
  auto bound = CertainAnswerLowerBound(*collection, plan);
  ASSERT_TRUE(bound.ok());
  EXPECT_TRUE(bound->certain.empty());
}

TEST(CertainAnswerTest, InconsistentCollectionIsAnError) {
  // The only claimed fact contradicts its view's head pattern.
  auto view = testing::Q("V(y, y) <- T(y, y)");
  Relation extension = {Tuple{Value(int64_t{1}), Value(int64_t{2})}};
  auto source = SourceDescriptor::Create("S", view, extension,
                                         Rational::Zero(), Rational::One());
  ASSERT_TRUE(source.ok());
  auto collection = SourceCollection::Create({*source});
  ASSERT_TRUE(collection.ok());
  EXPECT_EQ(CertainAnswerLowerBound(*collection,
                                    AlgebraExpr::Base("T", 2))
                .status()
                .code(),
            StatusCode::kInconsistent);
}

TEST(CertainAnswerTest, CombinationBudgetMarksTruncation) {
  auto collection =
      MakeUnaryCollection({MakeUnarySource("S", {0, 1, 2}, "0", "0")});
  auto bound = CertainAnswerLowerBound(collection, AlgebraExpr::Base("R", 1),
                                       /*max_combinations=*/2);
  ASSERT_TRUE(bound.ok());
  EXPECT_TRUE(bound->truncated || bound->certain.empty());
}

}  // namespace
}  // namespace psc
