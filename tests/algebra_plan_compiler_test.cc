#include "psc/algebra/plan_compiler.h"

#include "gtest/gtest.h"
#include "psc/core/query_system.h"
#include "psc/workload/ghcn.h"
#include "test_util.h"

namespace psc {
namespace {

/// Compiled plan and original query must agree on a database.
void ExpectPlanMatchesQuery(const ConjunctiveQuery& query,
                            const Database& db) {
  auto plan = CompileQuery(query);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  auto via_plan = (*plan)->EvalInWorld(db);
  auto via_query = query.Evaluate(db);
  ASSERT_TRUE(via_plan.ok() && via_query.ok());
  EXPECT_EQ(*via_plan, *via_query)
      << query.ToString() << "\nplan: " << (*plan)->ToString();
}

Database SampleDb() {
  Database db;
  db.AddFact("E", {Value(int64_t{1}), Value(int64_t{2})});
  db.AddFact("E", {Value(int64_t{2}), Value(int64_t{3})});
  db.AddFact("E", {Value(int64_t{3}), Value(int64_t{3})});
  db.AddFact("N", {Value(int64_t{2})});
  db.AddFact("N", {Value(int64_t{3})});
  return db;
}

TEST(PlanCompilerTest, SingleAtomScan) {
  ExpectPlanMatchesQuery(testing::Q("V(x, y) <- E(x, y)"), SampleDb());
}

TEST(PlanCompilerTest, ProjectionAndReordering) {
  ExpectPlanMatchesQuery(testing::Q("V(y) <- E(x, y)"), SampleDb());
  ExpectPlanMatchesQuery(testing::Q("V(y, x) <- E(x, y)"), SampleDb());
  ExpectPlanMatchesQuery(testing::Q("V(x, x) <- E(x, y)"), SampleDb());
}

TEST(PlanCompilerTest, EmbeddedConstants) {
  ExpectPlanMatchesQuery(testing::Q("V(y) <- E(2, y)"), SampleDb());
  ExpectPlanMatchesQuery(testing::Q("V(y) <- E(9, y)"), SampleDb());
}

TEST(PlanCompilerTest, RepeatedVariablesWithinAtom) {
  ExpectPlanMatchesQuery(testing::Q("V(x) <- E(x, x)"), SampleDb());
}

TEST(PlanCompilerTest, JoinAcrossAtoms) {
  ExpectPlanMatchesQuery(testing::Q("V(x, z) <- E(x, y), E(y, z)"),
                         SampleDb());
  ExpectPlanMatchesQuery(testing::Q("V(x) <- E(x, y), N(y)"), SampleDb());
  ExpectPlanMatchesQuery(
      testing::Q("V(x) <- E(x, y), E(y, z), N(z)"), SampleDb());
}

TEST(PlanCompilerTest, BuiltinsAllForms) {
  // var-const, const-var (swapped), var-var, const-const.
  ExpectPlanMatchesQuery(testing::Q("V(x, y) <- E(x, y), After(y, 2)"),
                         SampleDb());
  ExpectPlanMatchesQuery(testing::Q("V(x, y) <- E(x, y), Before(2, y)"),
                         SampleDb());
  ExpectPlanMatchesQuery(testing::Q("V(x, y) <- E(x, y), Lt(x, y)"),
                         SampleDb());
  ExpectPlanMatchesQuery(testing::Q("V(x, y) <- E(x, y), Eq(1, 1)"),
                         SampleDb());
  ExpectPlanMatchesQuery(testing::Q("V(x, y) <- E(x, y), Eq(1, 2)"),
                         SampleDb());  // always-false: empty result
}

TEST(PlanCompilerTest, PaperClimatologyView) {
  GhcnConfig config;
  config.num_stations = 6;
  GhcnGenerator generator(config, 5);
  const GhcnWorld world = generator.GenerateTruth();
  const ConjunctiveQuery query = testing::Q(
      "V(s, y, m, v) <- Temperature(s, y, m, v), "
      "Station(s, lat, lon, \"Canada\"), After(y, 1900)");
  ExpectPlanMatchesQuery(query, world.truth);
}

TEST(PlanCompilerTest, RandomizedAgreementOnRandomDatabases) {
  Rng rng(77);
  const std::vector<ConjunctiveQuery> queries = {
      testing::Q("V(x) <- E(x, y), N(y), After(x, 1)"),
      testing::Q("V(x, z) <- E(x, y), E(y, z), Ne(x, z)"),
      testing::Q("V(y) <- E(y, y), N(y)"),
  };
  for (int trial = 0; trial < 20; ++trial) {
    Database db;
    for (int i = 0; i < 8; ++i) {
      db.AddFact("E", {Value(rng.UniformInt(0, 4)),
                       Value(rng.UniformInt(0, 4))});
      if (rng.Bernoulli(0.6)) {
        db.AddFact("N", {Value(rng.UniformInt(0, 4))});
      }
    }
    for (const ConjunctiveQuery& query : queries) {
      ExpectPlanMatchesQuery(query, db);
    }
  }
}

TEST(PlanCompilerTest, HeadConstantUnsupported) {
  auto query = ConjunctiveQuery::Create(
      Atom("V", {Term::ConstInt(1), Term::Var("y")}),
      {Atom("E", {Term::ConstInt(1), Term::Var("y")})});
  ASSERT_TRUE(query.ok());
  EXPECT_EQ(CompileQuery(*query).status().code(),
            StatusCode::kUnimplemented);
}

TEST(PlanCompilerTest, FacadeRunsConjunctiveQueriesEndToEnd) {
  // Identity collection; CQ overloads dispatch through the compiler.
  Relation v1 = {testing::U(0), testing::U(1)};
  auto source = SourceDescriptor::Create(
      "S", ConjunctiveQuery::Identity("R", 1), v1, Rational(1, 2),
      Rational(1, 2));
  ASSERT_TRUE(source.ok());
  auto collection = SourceCollection::Create({*source});
  ASSERT_TRUE(collection.ok());
  auto system = QuerySystem::Create(*collection);
  ASSERT_TRUE(system.ok());
  const ConjunctiveQuery query = testing::Q("Ans(x) <- R(x), Le(x, 1)");
  auto exact = system->AnswerExact(query, testing::IntDomain(3));
  ASSERT_TRUE(exact.ok()) << exact.status().ToString();
  EXPECT_EQ(exact->method, "exact-enumeration");
  EXPECT_GT(exact->possible.size(), 0u);
  auto compositional =
      system->AnswerCompositional(query, testing::IntDomain(3));
  ASSERT_TRUE(compositional.ok());
  for (const auto& [tuple, confidence] : exact->confidences.entries()) {
    EXPECT_NEAR(*compositional->confidences.ConfidenceOf(tuple), confidence,
                1e-12);
  }
}

}  // namespace
}  // namespace psc
