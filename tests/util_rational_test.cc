#include "psc/util/rational.h"

#include "gtest/gtest.h"

namespace psc {
namespace {

TEST(RationalTest, NormalizationReducesAndFixesSign) {
  Rational r(6, 8);
  EXPECT_EQ(r.numerator(), 3);
  EXPECT_EQ(r.denominator(), 4);
  Rational negative(3, -6);
  EXPECT_EQ(negative.numerator(), -1);
  EXPECT_EQ(negative.denominator(), 2);
  Rational zero(0, 17);
  EXPECT_EQ(zero.numerator(), 0);
  EXPECT_EQ(zero.denominator(), 1);
}

TEST(RationalTest, ParseIntegers) {
  auto r = Rational::Parse("7");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, Rational(7));
  auto negative = Rational::Parse("-3");
  ASSERT_TRUE(negative.ok());
  EXPECT_EQ(*negative, Rational(-3));
}

TEST(RationalTest, ParseFractions) {
  auto r = Rational::Parse("3/4");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, Rational(3, 4));
  auto reduced = Rational::Parse("2/8");
  ASSERT_TRUE(reduced.ok());
  EXPECT_EQ(*reduced, Rational(1, 4));
  EXPECT_FALSE(Rational::Parse("1/0").ok());
}

TEST(RationalTest, ParseDecimals) {
  auto half = Rational::Parse("0.5");
  ASSERT_TRUE(half.ok());
  EXPECT_EQ(*half, Rational(1, 2));
  auto precise = Rational::Parse("0.125");
  ASSERT_TRUE(precise.ok());
  EXPECT_EQ(*precise, Rational(1, 8));
  auto mixed = Rational::Parse("1.25");
  ASSERT_TRUE(mixed.ok());
  EXPECT_EQ(*mixed, Rational(5, 4));
  auto negative = Rational::Parse("-0.75");
  ASSERT_TRUE(negative.ok());
  EXPECT_EQ(*negative, Rational(-3, 4));
}

TEST(RationalTest, ParseRejectsGarbage) {
  EXPECT_FALSE(Rational::Parse("").ok());
  EXPECT_FALSE(Rational::Parse("abc").ok());
  EXPECT_FALSE(Rational::Parse("1/два").ok());
  EXPECT_FALSE(Rational::Parse("1.2.3").ok());
}

TEST(RationalTest, ParseRejectsOverflowingDecimals) {
  // whole*scale + frac exceeds int64 even though both parts parse on
  // their own; this used to wrap silently instead of erroring.
  EXPECT_FALSE(Rational::Parse("9223372036854775807.5").ok());
  EXPECT_FALSE(Rational::Parse("-9223372036854775807.5").ok());
  EXPECT_FALSE(Rational::Parse("10000000000.999999999").ok());
  // More than 18 fractional digits is still rejected outright.
  EXPECT_FALSE(Rational::Parse("0.1234567890123456789").ok());
}

TEST(RationalTest, ParseLargeDecimalsWithinRange) {
  auto big = Rational::Parse("922337203685477580.7");
  ASSERT_TRUE(big.ok());
  EXPECT_EQ(*big, Rational(INT64_MAX, 10));
  auto negative = Rational::Parse("-922337203685477580.7");
  ASSERT_TRUE(negative.ok());
  EXPECT_EQ(*negative, Rational(INT64_MIN + 1, 10));
  auto long_frac = Rational::Parse("0.000000000000000001");
  ASSERT_TRUE(long_frac.ok());
  EXPECT_EQ(*long_frac, Rational(1, 1000000000000000000));
}

TEST(RationalTest, NormalizationHandlesInt64MinMagnitudes) {
  // Gcd on INT64_MIN used to negate it (signed overflow, UB); the
  // unsigned-magnitude Gcd reduces these without wrapping.
  const Rational r(INT64_MIN, 2);
  EXPECT_EQ(r.numerator(), INT64_MIN / 2);
  EXPECT_EQ(r.denominator(), 1);
  const Rational odd(INT64_MIN, 3);
  EXPECT_EQ(odd.numerator(), INT64_MIN);
  EXPECT_EQ(odd.denominator(), 3);
}

TEST(RationalTest, Arithmetic) {
  const Rational half(1, 2);
  const Rational third(1, 3);
  EXPECT_EQ(half + third, Rational(5, 6));
  EXPECT_EQ(half - third, Rational(1, 6));
  EXPECT_EQ(half * third, Rational(1, 6));
  EXPECT_EQ(half / third, Rational(3, 2));
}

TEST(RationalTest, ArithmeticAvoidsIntermediateOverflow) {
  // (a/b) * (b/a) with large co-prime-ish operands.
  const Rational a(1000000007, 998244353);
  const Rational b(998244353, 1000000007);
  EXPECT_EQ(a * b, Rational::One());
  EXPECT_EQ(a / a, Rational::One());
}

TEST(RationalTest, Comparisons) {
  EXPECT_LT(Rational(1, 3), Rational(1, 2));
  EXPECT_LE(Rational(2, 4), Rational(1, 2));
  EXPECT_GT(Rational(3, 4), Rational(2, 3));
  EXPECT_GE(Rational(-1, 2), Rational(-2, 3));
  EXPECT_LT(Rational(-1, 2), Rational::Zero());
}

TEST(RationalTest, MulCeilExactAtBoundaries) {
  // ⌈(1/3)·k⌉: the soundness-threshold formula.
  EXPECT_EQ(Rational(1, 3).MulCeil(3), 1);
  EXPECT_EQ(Rational(1, 3).MulCeil(4), 2);
  EXPECT_EQ(Rational(1, 3).MulCeil(0), 0);
  EXPECT_EQ(Rational::One().MulCeil(5), 5);
  EXPECT_EQ(Rational::Zero().MulCeil(100), 0);
  EXPECT_EQ(Rational(2, 3).MulCeil(3), 2);
  EXPECT_EQ(Rational(2, 3).MulCeil(4), 3);  // 8/3 → 3
}

TEST(RationalTest, MulFloor) {
  EXPECT_EQ(Rational(1, 3).MulFloor(4), 1);
  EXPECT_EQ(Rational(2, 3).MulFloor(4), 2);
  EXPECT_EQ(Rational::One().MulFloor(9), 9);
}

TEST(RationalTest, DivFloorIsCompletenessCap) {
  // m = ⌊t/c⌋.
  EXPECT_EQ(Rational(1, 2).DivFloor(3), 6);
  EXPECT_EQ(Rational(2, 3).DivFloor(2), 3);
  EXPECT_EQ(Rational(1, 3).DivFloor(1), 3);
  EXPECT_EQ(Rational::One().DivFloor(7), 7);
}

TEST(RationalTest, ToStringRoundTrip) {
  EXPECT_EQ(Rational(3, 4).ToString(), "3/4");
  EXPECT_EQ(Rational(5).ToString(), "5");
  EXPECT_EQ(Rational(-1, 2).ToString(), "-1/2");
  auto parsed = Rational::Parse(Rational(7, 9).ToString());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, Rational(7, 9));
}

TEST(RationalTest, ToDouble) {
  EXPECT_NEAR(Rational(1, 3).ToDouble(), 1.0 / 3.0, 1e-15);
  EXPECT_EQ(Rational::Zero().ToDouble(), 0.0);
}

}  // namespace
}  // namespace psc
