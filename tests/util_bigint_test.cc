#include "psc/util/bigint.h"

#include <cstdint>

#include "gtest/gtest.h"

namespace psc {
namespace {

TEST(BigIntTest, ZeroProperties) {
  BigInt zero;
  EXPECT_TRUE(zero.IsZero());
  EXPECT_EQ(zero.ToString(), "0");
  EXPECT_EQ(zero.ToDouble(), 0.0);
  EXPECT_EQ(zero.BitLength(), 0);
  EXPECT_EQ(zero.ToUint64(), 0u);
}

TEST(BigIntTest, FromUint64RoundTrips) {
  for (const uint64_t value :
       {uint64_t{0}, uint64_t{1}, uint64_t{4294967295}, uint64_t{4294967296},
        uint64_t{18446744073709551615u}}) {
    BigInt big(value);
    EXPECT_TRUE(big.FitsUint64());
    EXPECT_EQ(big.ToUint64(), value);
    EXPECT_EQ(big.ToString(), std::to_string(value));
  }
}

TEST(BigIntTest, AdditionWithCarries) {
  BigInt a(0xffffffffu);
  BigInt b(1);
  EXPECT_EQ((a + b).ToUint64(), 0x100000000u);
  BigInt max64(UINT64_MAX);
  BigInt sum = max64 + BigInt(1);
  EXPECT_FALSE(sum.FitsUint64() && sum.ToUint64() == 0);  // grew a limb
  EXPECT_EQ(sum.ToString(), "18446744073709551616");
}

TEST(BigIntTest, SubtractionExact) {
  BigInt a(1000);
  BigInt b(999);
  EXPECT_EQ((a - b).ToUint64(), 1u);
  EXPECT_TRUE((a - a).IsZero());
  // Borrow across limbs.
  BigInt big = BigInt(UINT64_MAX) + BigInt(1);
  EXPECT_EQ((big - BigInt(1)).ToUint64(), UINT64_MAX);
}

TEST(BigIntTest, MultiplicationSmall) {
  EXPECT_EQ((BigInt(12345) * BigInt(6789)).ToUint64(), 83810205u);
  EXPECT_TRUE((BigInt(0) * BigInt(12345)).IsZero());
  EXPECT_EQ((BigInt(1) * BigInt(77)).ToUint64(), 77u);
}

TEST(BigIntTest, MultiplicationLargeMatchesPowersOfTwo) {
  // 2^200 via repeated squaring, check bit length and decimal string.
  BigInt two(2);
  BigInt value(1);
  for (int i = 0; i < 200; ++i) value = value * two;
  EXPECT_EQ(value.BitLength(), 201);
  EXPECT_EQ(value.ToString(),
            "1606938044258990275541962092341162602522202993782792835301376");
}

TEST(BigIntTest, MulU32MatchesMul) {
  BigInt a(987654321);
  BigInt b = a;
  b.MulU32(12345);
  EXPECT_EQ(b, a * BigInt(12345));
}

TEST(BigIntTest, DivU32WithRemainder) {
  BigInt value(1000000007);
  const uint32_t remainder = value.DivU32(10);
  EXPECT_EQ(remainder, 7u);
  EXPECT_EQ(value.ToUint64(), 100000000u);
}

TEST(BigIntTest, DivExactU32) {
  BigInt value = BigInt(123456) * BigInt(789);
  EXPECT_EQ(value.DivExactU32(789).ToUint64(), 123456u);
}

TEST(BigIntTest, ComparisonTotalOrder) {
  BigInt small(5);
  BigInt large = BigInt(UINT64_MAX) * BigInt(UINT64_MAX);
  EXPECT_LT(small, large);
  EXPECT_GT(large, small);
  EXPECT_LE(small, small);
  EXPECT_GE(small, small);
  EXPECT_EQ(small.Compare(small), 0);
  EXPECT_NE(small, large);
}

TEST(BigIntTest, ToDoubleLargeValues) {
  BigInt value(1);
  for (int i = 0; i < 100; ++i) value = value * BigInt(2);
  EXPECT_NEAR(value.ToDouble(), std::ldexp(1.0, 100), std::ldexp(1.0, 60));
}

TEST(BigIntTest, RatioToDoubleHugeOperands) {
  // (2^500 · 3) / 2^500 == 3 even though both operands overflow double.
  BigInt denominator(1);
  for (int i = 0; i < 500; ++i) denominator = denominator * BigInt(2);
  BigInt numerator = denominator * BigInt(3);
  EXPECT_NEAR(BigInt::RatioToDouble(numerator, denominator), 3.0, 1e-12);
  EXPECT_EQ(BigInt::RatioToDouble(BigInt(), denominator), 0.0);
}

TEST(BigIntTest, RatioToDoubleSimpleFractions) {
  EXPECT_NEAR(BigInt::RatioToDouble(BigInt(1), BigInt(3)), 1.0 / 3.0, 1e-15);
  EXPECT_NEAR(BigInt::RatioToDouble(BigInt(7), BigInt(8)), 0.875, 1e-15);
}

TEST(BigIntTest, DecimalStringPadding) {
  // A value whose middle 9-digit chunk needs zero padding.
  BigInt value(1);
  value.MulU32(1000000000u);
  value.MulU32(1000000000u);
  EXPECT_EQ(value.ToString(), "1000000000000000000");
  BigInt value2(1000000001);
  value2.MulU32(1000000000u);
  EXPECT_EQ(value2.ToString(), "1000000001000000000");
}

TEST(BigIntTest, RandomBelowStaysInRange) {
  std::mt19937_64 engine(7);
  BigInt bound = BigInt(1000003);
  for (int i = 0; i < 200; ++i) {
    BigInt sample = BigInt::RandomBelow(bound, engine);
    EXPECT_LT(sample, bound);
  }
  // Bound of 1 always yields 0.
  EXPECT_TRUE(BigInt::RandomBelow(BigInt(1), engine).IsZero());
}

TEST(BigIntTest, RandomBelowLargeBoundCoversHighLimbs) {
  std::mt19937_64 engine(11);
  BigInt bound = BigInt(UINT64_MAX) * BigInt(UINT64_MAX);
  bool saw_large = false;
  for (int i = 0; i < 64; ++i) {
    BigInt sample = BigInt::RandomBelow(bound, engine);
    EXPECT_LT(sample, bound);
    if (!sample.FitsUint64()) saw_large = true;
  }
  EXPECT_TRUE(saw_large);
}

TEST(BigIntTest, AccumulationMatchesClosedForm) {
  // Σ_{k=0}^{63} C-like doubling: Σ 2^k = 2^64 − 1.
  BigInt sum;
  BigInt term(1);
  for (int k = 0; k < 64; ++k) {
    sum += term;
    term = term * BigInt(2);
  }
  EXPECT_EQ(sum.ToUint64(), UINT64_MAX);
}

}  // namespace
}  // namespace psc
