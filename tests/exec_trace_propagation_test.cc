#include <algorithm>
#include <set>
#include <vector>

#include "gtest/gtest.h"
#include "psc/core/query_system.h"
#include "psc/exec/parallel.h"
#include "psc/exec/thread_pool.h"
#include "psc/obs/scope.h"
#include "psc/obs/trace.h"
#include "test_util.h"

namespace psc {
namespace {

using testing::IntDomain;
using testing::MakeUnaryCollection;
using testing::MakeUnarySource;

// Returns how many spans have no parent inside `spans` — the number of
// distinct trees the records form. Cross-thread propagation promises
// exactly one per query, regardless of thread count.
size_t CountRoots(const std::vector<obs::SpanRecord>& spans) {
  std::set<uint64_t> ids;
  for (const obs::SpanRecord& span : spans) ids.insert(span.id);
  size_t roots = 0;
  for (const obs::SpanRecord& span : spans) {
    if (span.parent_id < 0 ||
        ids.count(static_cast<uint64_t>(span.parent_id)) == 0) {
      ++roots;
    }
  }
  return roots;
}

class ExecTracePropagationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::Options options;
    options.trace_enabled = true;
    obs::SetOptions(options);
    obs::GlobalTrace().Clear();
    obs::GlobalMetrics().Reset();
  }
  void TearDown() override {
    obs::SetOptions(obs::Options{});
    obs::GlobalTrace().Clear();
    obs::GlobalMetrics().Reset();
  }
};

TEST_F(ExecTracePropagationTest, ParallelForSpansNestUnderSubmittingSpan) {
  const obs::Scope scope = obs::Scope::Create("prop_test.parallel_for");
  {
    const obs::ScopeGuard guard(scope);
    obs::TraceSpan root("prop_test.root");
    exec::ThreadPool pool(4);
    exec::ParallelFor(&pool, 64, [](size_t) {
      obs::TraceSpan body("prop_test.body");
      (void)body;
    });
  }
  const obs::ScopeSnapshot snapshot = scope.Snapshot();
  EXPECT_EQ(snapshot.spans_dropped, 0u);

  // Every task body span landed in the scope's buffer (workers inherit
  // the submitter's scope) and the whole run is one connected tree
  // rooted at prop_test.root.
  const size_t bodies = static_cast<size_t>(
      std::count_if(snapshot.spans.begin(), snapshot.spans.end(),
                    [](const obs::SpanRecord& span) {
                      return span.name == "prop_test.body";
                    }));
  EXPECT_EQ(bodies, 64u);
  EXPECT_EQ(CountRoots(snapshot.spans), 1u);
  for (const obs::SpanRecord& span : snapshot.spans) {
    EXPECT_EQ(span.scope_id, scope.id()) << span.name;
    EXPECT_GE(span.tid, 1u) << span.name;
  }
}

TEST_F(ExecTracePropagationTest, InlinePathKeepsDirectNesting) {
  // A null pool degrades to the sequential loop: spans nest directly
  // under the caller with no exec.shard hop and on the caller's lane.
  const obs::Scope scope = obs::Scope::Create("prop_test.inline");
  {
    const obs::ScopeGuard guard(scope);
    obs::TraceSpan root("prop_test.inline_root");
    exec::ParallelFor(nullptr, 4, [](size_t) {
      obs::TraceSpan body("prop_test.inline_body");
      (void)body;
    });
  }
  const obs::ScopeSnapshot snapshot = scope.Snapshot();
  EXPECT_EQ(CountRoots(snapshot.spans), 1u);
  const uint64_t lane = obs::CurrentThreadLaneId();
  for (const obs::SpanRecord& span : snapshot.spans) {
    EXPECT_EQ(span.tid, lane) << span.name;
  }
}

#if PSC_OBS_ENABLED

TEST_F(ExecTracePropagationTest, MonteCarloAnswerFormsOneTreeAtFourThreads) {
  QuerySystem::Options options;
  options.threads = 4;
  options.scope = obs::Scope::Create("prop_test.mc_query");
  auto system = QuerySystem::Create(
      MakeUnaryCollection({MakeUnarySource("S1", {0, 1}, "1/2", "1/2"),
                           MakeUnarySource("S2", {1, 2}, "1/2", "1/2")}),
      options);
  ASSERT_TRUE(system.ok());

  auto answer = system->AnswerMonteCarlo(AlgebraExpr::Base("R", 1),
                                         IntDomain(4), /*samples=*/20000,
                                         /*seed=*/7);
  ASSERT_TRUE(answer.ok());

  const obs::ScopeSnapshot snapshot = options.scope.Snapshot();
  EXPECT_EQ(snapshot.spans_dropped, 0u);
  ASSERT_GE(snapshot.spans.size(), 2u);  // the root plus pool shards
  EXPECT_EQ(CountRoots(snapshot.spans), 1u);

  // The root is the query entry-point span; shards ran on worker lanes.
  const auto root = std::find_if(
      snapshot.spans.begin(), snapshot.spans.end(),
      [](const obs::SpanRecord& span) {
        return span.name == "query.answer_monte_carlo";
      });
  ASSERT_NE(root, snapshot.spans.end());
  // Lanes are bounded by the caller plus the four pool workers. (A lower
  // bound would be flaky: a fast caller can drain every shard itself.)
  std::set<uint64_t> lanes;
  for (const obs::SpanRecord& span : snapshot.spans) lanes.insert(span.tid);
  EXPECT_GE(lanes.size(), 1u);
  EXPECT_LE(lanes.size(), 5u);
}

#endif  // PSC_OBS_ENABLED

}  // namespace
}  // namespace psc
