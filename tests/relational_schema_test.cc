#include "psc/relational/schema.h"

#include "gtest/gtest.h"

namespace psc {
namespace {

TEST(SchemaTest, AddAndLookup) {
  Schema schema;
  EXPECT_TRUE(schema.AddRelation("R", 2).ok());
  EXPECT_TRUE(schema.HasRelation("R"));
  EXPECT_FALSE(schema.HasRelation("S"));
  auto arity = schema.Arity("R");
  ASSERT_TRUE(arity.ok());
  EXPECT_EQ(*arity, 2u);
  EXPECT_EQ(schema.Arity("S").status().code(), StatusCode::kNotFound);
}

TEST(SchemaTest, RedeclareSameArityIsIdempotent) {
  Schema schema;
  EXPECT_TRUE(schema.AddRelation("R", 2).ok());
  EXPECT_TRUE(schema.AddRelation("R", 2).ok());
  EXPECT_EQ(schema.size(), 1u);
}

TEST(SchemaTest, ConflictingArityRejected) {
  Schema schema;
  EXPECT_TRUE(schema.AddRelation("R", 2).ok());
  const Status status = schema.AddRelation("R", 3);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(SchemaTest, RelationNamesSorted) {
  Schema schema;
  EXPECT_TRUE(schema.AddRelation("Zeta", 1).ok());
  EXPECT_TRUE(schema.AddRelation("Alpha", 2).ok());
  EXPECT_EQ(schema.RelationNames(),
            (std::vector<std::string>{"Alpha", "Zeta"}));
}

TEST(SchemaTest, MergeCompatible) {
  Schema a;
  Schema b;
  EXPECT_TRUE(a.AddRelation("R", 1).ok());
  EXPECT_TRUE(b.AddRelation("S", 2).ok());
  EXPECT_TRUE(b.AddRelation("R", 1).ok());
  EXPECT_TRUE(a.MergeFrom(b).ok());
  EXPECT_EQ(a.size(), 2u);
}

TEST(SchemaTest, MergeConflictFails) {
  Schema a;
  Schema b;
  EXPECT_TRUE(a.AddRelation("R", 1).ok());
  EXPECT_TRUE(b.AddRelation("R", 2).ok());
  EXPECT_FALSE(a.MergeFrom(b).ok());
}

TEST(SchemaTest, EqualityAndToString) {
  Schema a;
  Schema b;
  EXPECT_TRUE(a.AddRelation("R", 2).ok());
  EXPECT_TRUE(b.AddRelation("R", 2).ok());
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.ToString(), "{R/2}");
}

}  // namespace
}  // namespace psc
