#include "psc/limits/budget.h"

#include <chrono>
#include <thread>

#include "gtest/gtest.h"
#include "psc/util/status.h"

namespace psc {
namespace {

using limits::Budget;
using limits::BudgetOptions;
using limits::CancelToken;
using limits::StopReason;

TEST(BudgetTest, DefaultIsUnlimited) {
  const Budget budget;
  EXPECT_FALSE(budget.active());
  for (int i = 0; i < 1000; ++i) EXPECT_TRUE(budget.Charge());
  EXPECT_FALSE(budget.Expired());
  EXPECT_TRUE(budget.ChargeMemory(uint64_t{1} << 40));
  EXPECT_EQ(budget.reason(), StopReason::kNone);
  EXPECT_EQ(budget.nodes_charged(), 0u);
  EXPECT_TRUE(budget.ToStatus().ok());
}

TEST(BudgetTest, NodeBudgetTripsAtTheBound) {
  const Budget budget = Budget::WithNodeBudget(10);
  EXPECT_TRUE(budget.active());
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(budget.Charge()) << "charge " << i;
  }
  EXPECT_FALSE(budget.Charge());
  EXPECT_EQ(budget.reason(), StopReason::kNodeBudget);
  const Status status = budget.ToStatus();
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(status.message().find("node budget"), std::string::npos);
  // The trip is sticky.
  EXPECT_FALSE(budget.Charge());
  EXPECT_TRUE(budget.Expired());
}

TEST(BudgetTest, WeightedChargesCountAgainstTheBudget) {
  const Budget budget = Budget::WithNodeBudget(100);
  EXPECT_TRUE(budget.Charge(60));
  EXPECT_TRUE(budget.Charge(40));
  EXPECT_FALSE(budget.Charge(1));
  EXPECT_EQ(budget.reason(), StopReason::kNodeBudget);
}

TEST(BudgetTest, CopiesShareTripState) {
  const Budget budget = Budget::WithNodeBudget(5);
  const Budget copy = budget;
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(copy.Charge());
  EXPECT_FALSE(copy.Charge());
  // The original observes the copy's trip.
  EXPECT_FALSE(budget.Charge());
  EXPECT_EQ(budget.reason(), StopReason::kNodeBudget);
  EXPECT_GE(budget.nodes_charged(), 5u);
}

TEST(BudgetTest, DeadlineTripsViaExpired) {
  const Budget budget = Budget::WithDeadline(1);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_TRUE(budget.Expired());
  EXPECT_EQ(budget.reason(), StopReason::kDeadline);
  const Status status = budget.ToStatus();
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(status.message().find("deadline"), std::string::npos);
}

TEST(BudgetTest, DeadlineTripsViaChargeWithinOneStride) {
  const Budget budget = Budget::WithDeadline(1);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  // A charge of a full stride polls the clock unconditionally.
  EXPECT_FALSE(budget.Charge(Budget::kDeadlineStride));
  EXPECT_EQ(budget.reason(), StopReason::kDeadline);
}

TEST(BudgetTest, UnitChargesDetectTheDeadlineWithinOneStride) {
  const Budget budget = Budget::WithDeadline(1);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  bool tripped = false;
  for (uint64_t i = 0; i <= Budget::kDeadlineStride && !tripped; ++i) {
    tripped = !budget.Charge();
  }
  EXPECT_TRUE(tripped);
  EXPECT_EQ(budget.reason(), StopReason::kDeadline);
}

TEST(BudgetTest, CancelTripsAndCancelsTheToken) {
  const Budget budget = Budget::WithNodeBudget(1000);
  const CancelToken token = budget.token();
  EXPECT_FALSE(token.cancelled());
  budget.Cancel();
  EXPECT_TRUE(token.cancelled());
  EXPECT_FALSE(budget.Charge());
  EXPECT_EQ(budget.reason(), StopReason::kCancelled);
  EXPECT_EQ(budget.ToStatus().code(), StatusCode::kDeadlineExceeded);
}

TEST(BudgetTest, CancellingTheTokenTripsTheBudget) {
  const Budget budget = Budget::WithNodeBudget(1000);
  budget.token().Cancel();
  EXPECT_FALSE(budget.Charge());
  EXPECT_EQ(budget.reason(), StopReason::kCancelled);
}

TEST(BudgetTest, MemoryBudgetTripsAndReleases) {
  BudgetOptions options;
  options.memory_budget_bytes = 1000;
  const Budget budget(options);
  EXPECT_TRUE(budget.ChargeMemory(600));
  EXPECT_FALSE(budget.ChargeMemory(600));
  EXPECT_EQ(budget.reason(), StopReason::kMemoryBudget);
  EXPECT_EQ(budget.ToStatus().code(), StatusCode::kResourceExhausted);
}

TEST(BudgetTest, ReleaseMemoryUndoesACharge) {
  BudgetOptions options;
  options.memory_budget_bytes = 1000;
  const Budget budget(options);
  EXPECT_TRUE(budget.ChargeMemory(800));
  budget.ReleaseMemory(800);
  EXPECT_TRUE(budget.ChargeMemory(900));
  EXPECT_EQ(budget.reason(), StopReason::kNone);
}

TEST(BudgetTest, StopReasonNames) {
  EXPECT_STREQ(limits::StopReasonToString(StopReason::kNone), "none");
  EXPECT_STREQ(limits::StopReasonToString(StopReason::kDeadline), "deadline");
  EXPECT_STREQ(limits::StopReasonToString(StopReason::kNodeBudget),
               "node-budget");
  EXPECT_STREQ(limits::StopReasonToString(StopReason::kMemoryBudget),
               "memory-budget");
  EXPECT_STREQ(limits::StopReasonToString(StopReason::kCancelled),
               "cancelled");
}

TEST(CancelTokenTest, CopiesShareTheFlag) {
  const CancelToken token;
  const CancelToken copy = token;
  EXPECT_FALSE(copy.cancelled());
  token.Cancel();
  EXPECT_TRUE(copy.cancelled());
}

}  // namespace
}  // namespace psc
