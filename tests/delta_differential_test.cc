// Differential tests for the incremental delta engine: a database (or
// collection) maintained through random insert/retract deltas must be
// bit-identical — contents, query results, verdicts, confidences — to one
// rebuilt from scratch at the same logical state, across both evaluation
// engines and across thread counts.

#include <cstdint>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "psc/delta/incremental.h"
#include "psc/parser/parser.h"
#include "psc/relational/conjunctive_query.h"
#include "psc/relational/database.h"
#include "psc/relational/query_plan.h"
#include "psc/source/source_collection.h"
#include "psc/util/random.h"
#include "psc/util/rational.h"
#include "psc/util/string_util.h"

namespace psc {
namespace {

ConjunctiveQuery Q(const std::string& text) {
  auto query = ParseQuery(text);
  EXPECT_TRUE(query.ok()) << query.status().ToString();
  return *std::move(query);
}

/// Restores the process-global engine switch on scope exit.
class EngineGuard {
 public:
  explicit EngineGuard(bool compiled) : saved_(eval::CompiledEvalEnabled()) {
    eval::SetCompiledEvalEnabled(compiled);
  }
  ~EngineGuard() { eval::SetCompiledEvalEnabled(saved_); }

 private:
  bool saved_;
};

DatabaseDelta RandomDelta(Rng& rng, const Database& db) {
  DatabaseDelta delta;
  const int64_t inserts = rng.UniformInt(0, 6);
  for (int64_t i = 0; i < inserts; ++i) {
    delta.Insert("E", {Value(rng.UniformInt(0, 11)),
                       Value(rng.UniformInt(0, 11))});
  }
  // Retract a mix of live tuples and misses (no-ops must stay no-ops).
  const Relation& live = db.GetRelation("E");
  const int64_t retracts = rng.UniformInt(0, 4);
  for (int64_t i = 0; i < retracts && !live.empty(); ++i) {
    auto it = live.begin();
    std::advance(it, rng.UniformInt(0, static_cast<int64_t>(live.size()) - 1));
    delta.Retract("E", *it);
  }
  if (rng.UniformInt(0, 1) == 0) {
    delta.Retract("E", {Value(int64_t{99}), Value(int64_t{99})});  // miss
  }
  return delta;
}

TEST(DeltaDifferentialTest, StreamedDatabaseMatchesRebuiltAcrossEngines) {
  const ConjunctiveQuery two_hop = Q("V(x, z) <- E(x, y), E(y, z)");
  const ConjunctiveQuery triangle = Q("V(x) <- E(x, y), E(y, z), E(z, x)");

  for (const uint64_t seed : {11u, 29u, 47u}) {
    Rng rng(seed);
    Database streamed;
    for (int i = 0; i < 24; ++i) {
      streamed.AddFact("E", {Value(rng.UniformInt(0, 11)),
                             Value(rng.UniformInt(0, 11))});
    }
    // Warm indexes so every later delta exercises the patching path.
    ASSERT_TRUE(two_hop.Evaluate(streamed).ok());

    for (int step = 0; step < 40; ++step) {
      streamed.ApplyDelta(RandomDelta(rng, streamed));

      Database rebuilt;
      for (const Fact& fact : streamed.AllFacts()) rebuilt.AddFact(fact);
      ASSERT_EQ(streamed, rebuilt) << "seed " << seed << " step " << step;

      for (const bool compiled : {true, false}) {
        EngineGuard guard(compiled);
        for (const ConjunctiveQuery* query : {&two_hop, &triangle}) {
          auto live = query->Evaluate(streamed);
          auto fresh = query->Evaluate(rebuilt);
          ASSERT_TRUE(live.ok()) << live.status().ToString();
          ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
          EXPECT_EQ(*live, *fresh)
              << "seed " << seed << " step " << step << " compiled "
              << compiled;
        }
      }
    }
  }
}

CollectionDelta RandomCollectionDelta(Rng& rng,
                                      const SourceCollection& collection) {
  CollectionDelta delta;
  const int64_t ops = rng.UniformInt(1, 4);
  for (int64_t i = 0; i < ops; ++i) {
    const size_t source = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(collection.size()) - 1));
    const std::string& name = collection.source(source).name();
    const Tuple tuple = {Value(rng.UniformInt(0, 5))};
    if (rng.UniformInt(0, 2) == 0) {
      delta.Retract(name, tuple);
    } else {
      delta.Insert(name, tuple);
    }
  }
  return delta;
}

TEST(DeltaDifferentialTest, IncrementalSystemMatchesFreshSystemAcrossThreads) {
  std::vector<Value> domain;
  for (int64_t v = 0; v <= 5; ++v) domain.push_back(Value(v));
  const ConjunctiveQuery query = Q("Ans(x) <- R(x)");

  for (const size_t threads : {size_t{1}, size_t{4}}) {
    std::vector<SourceDescriptor> sources;
    for (int i = 0; i < 2; ++i) {
      Relation extension = {{Value(int64_t{i})}, {Value(int64_t{i + 1})}};
      auto source = SourceDescriptor::Create(
          StrCat("S", i), Q(StrCat("V", i, "(x) <- R(x)")),
          std::move(extension), Rational(1, 8), Rational(1, 2));
      ASSERT_TRUE(source.ok());
      sources.push_back(*std::move(source));
    }
    auto collection = SourceCollection::Create(std::move(sources));
    ASSERT_TRUE(collection.ok());

    QuerySystem::Options options;
    options.threads = threads;
    auto incremental = delta::IncrementalSystem::Create(*collection, options);
    ASSERT_TRUE(incremental.ok()) << incremental.status().ToString();

    Rng rng(5 + threads);
    for (int step = 0; step < 12; ++step) {
      auto summary = incremental->ApplyDelta(
          RandomCollectionDelta(rng, incremental->CollectionSnapshot()));
      ASSERT_TRUE(summary.ok()) << summary.status().ToString();

      // Oracle: a fresh system over a snapshot of the mutated collection.
      auto fresh =
          QuerySystem::Create(incremental->CollectionSnapshot(), options);
      ASSERT_TRUE(fresh.ok());

      auto live_report = incremental->CheckConsistency();
      auto fresh_report = fresh->CheckConsistency();
      ASSERT_TRUE(live_report.ok()) << live_report.status().ToString();
      ASSERT_TRUE(fresh_report.ok()) << fresh_report.status().ToString();
      ASSERT_EQ(live_report->verdict, fresh_report->verdict)
          << "threads " << threads << " step " << step;
      if (live_report->verdict != ConsistencyVerdict::kConsistent) continue;

      auto live = incremental->AnswerExact(query, domain);
      auto fresh_answer = fresh->AnswerExact(query, domain);
      ASSERT_TRUE(live.ok()) << live.status().ToString();
      ASSERT_TRUE(fresh_answer.ok()) << fresh_answer.status().ToString();
      EXPECT_EQ(live->certain, fresh_answer->certain);
      EXPECT_EQ(live->possible, fresh_answer->possible);
      EXPECT_EQ(live->worlds_used, fresh_answer->worlds_used);
      EXPECT_EQ(live->confidences.entries(), fresh_answer->confidences.entries())
          << "threads " << threads << " step " << step;
    }
  }
}

}  // namespace
}  // namespace psc
