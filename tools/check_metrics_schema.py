#!/usr/bin/env python3
"""Validate psc::obs run-report JSON against the documented schema.

Accepts either format the toolchain emits:
  * a single run report object, as written by `psc ... --metrics-out=FILE`
    (schema_version 1 or 2; see src/psc/obs/report.h), or
  * JSON-lines of bench metrics records, one
    `{"bench": <name>, "metrics": <run report>}` object per line, as
    appended by the benchmarks when PSC_BENCH_METRICS_OUT is set.

Schema v2 extends v1 with interpolated percentiles (p95 joins the
histogram fields), per-span `tid`/`scope` fields, and a per-query
`queries` object carrying each obs::Scope's deltas and limits trip.
Both versions validate; v1 artifacts (e.g. checked-in bench baselines)
stay accepted forever.

Usage:
  check_metrics_schema.py FILE...
  check_metrics_schema.py --require-counter consistency.checks FILE
  check_metrics_schema.py --require-trip deadline FILE
  psc check data/example51.psc --metrics-out=/dev/stdout --quiet \
      | check_metrics_schema.py -

Exits 0 when every report validates (and every required counter is
present with a positive value, and every required trip reason appears
on some query, in at least one report), 1 otherwise. This mirrors
obs::ValidateRunReportJson so CI can check artifacts without
rebuilding the C++ toolchain.
"""

import argparse
import json
import sys

MIN_SCHEMA_VERSION = 1
MAX_SCHEMA_VERSION = 2

# Every instrument name must live under a known subsystem prefix, so a
# typo'd or undocumented metric fails CI instead of silently shipping.
# Keep in sync with the PSC_OBS_* call sites; `delta.` covers the
# incremental engine (batch application, index maintenance, dirty-scoped
# consistency and the group-scoped answer cache); `serve.` covers the
# resident query service (admission, batching, per-verb latency).
KNOWN_PREFIXES = (
    "algebra.",
    "brute_force.",
    "consistency.",
    "counting.",
    "delta.",
    "eval.",
    "exec.",
    "hitting_set.",
    "limits.",
    "obs.",
    "query.",
    "rewriting.",
    "serve.",
    "tableau.",
    "trace.",
)

HISTOGRAM_FIELDS = ("count", "sum", "min", "max", "mean", "p50", "p90", "p99")
HISTOGRAM_FIELDS_V2 = HISTOGRAM_FIELDS + ("p95",)
SPAN_NUMERIC_FIELDS = ("parent", "depth", "start_us", "duration_us")
SPAN_NUMERIC_FIELDS_V2 = SPAN_NUMERIC_FIELDS + ("tid", "scope")


class SchemaError(Exception):
    pass


def _expect(condition, message):
    if not condition:
        raise SchemaError(message)


def _is_number(value):
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _check_prefix(name, kind, where):
    _expect(any(name.startswith(prefix) for prefix in KNOWN_PREFIXES),
            "%s%s %r outside the known subsystem prefixes %s"
            % (where, kind, name, "/".join(p.rstrip(".")
                                           for p in KNOWN_PREFIXES)))


def _validate_instruments(container, version, where):
    """Validates the counters/gauges/histograms trio inside `container`."""
    counters = container.get("counters")
    _expect(isinstance(counters, dict), "%smissing counters object" % where)
    for name, value in counters.items():
        _check_prefix(name, "counter", where)
        _expect(_is_number(value) and value >= 0,
                "%scounter %r not a non-negative number" % (where, name))

    gauges = container.get("gauges")
    _expect(isinstance(gauges, dict), "%smissing gauges object" % where)
    for name, value in gauges.items():
        _check_prefix(name, "gauge", where)
        _expect(_is_number(value), "%sgauge %r not numeric" % (where, name))

    histogram_fields = (HISTOGRAM_FIELDS_V2 if version >= 2
                        else HISTOGRAM_FIELDS)
    histograms = container.get("histograms")
    _expect(isinstance(histograms, dict),
            "%smissing histograms object" % where)
    for name, snapshot in histograms.items():
        _check_prefix(name, "histogram", where)
        _expect(isinstance(snapshot, dict),
                "%shistogram %r not an object" % (where, name))
        for field in histogram_fields:
            _expect(_is_number(snapshot.get(field)) and snapshot[field] >= 0,
                    "%shistogram %r field %r invalid" % (where, name, field))
        _expect(snapshot["count"] > 0 or snapshot["sum"] == 0,
                "%shistogram %r has sum without samples" % (where, name))
        _expect(snapshot["min"] <= snapshot["max"],
                "%shistogram %r has min > max" % (where, name))


def validate_report(report):
    """Raises SchemaError when `report` is not a valid run report."""
    _expect(isinstance(report, dict), "document not an object")
    version = report.get("schema_version")
    _expect(_is_number(version), "missing numeric schema_version")
    version = int(version)
    _expect(MIN_SCHEMA_VERSION <= version <= MAX_SCHEMA_VERSION,
            "unsupported schema_version %r" % (version,))

    _validate_instruments(report, version, "")

    spans = report.get("spans")
    _expect(isinstance(spans, list), "missing spans array")
    span_fields = (SPAN_NUMERIC_FIELDS_V2 if version >= 2
                   else SPAN_NUMERIC_FIELDS)
    span_ids = set()
    for span in spans:
        _expect(isinstance(span, dict), "span not an object")
        _expect(_is_number(span.get("id")), "span missing numeric id")
        _expect(isinstance(span.get("name"), str), "span missing name")
        for field in span_fields:
            _expect(_is_number(span.get(field)),
                    "span missing field %r" % field)
        span_ids.add(int(span["id"]))

    dropped = report.get("spans_dropped")
    _expect(_is_number(dropped) and dropped >= 0,
            "missing numeric spans_dropped")
    # Parent links are only guaranteed complete when nothing was dropped.
    if dropped == 0:
        for span in spans:
            parent = int(span["parent"])
            _expect(parent == -1 or parent in span_ids,
                    "span parent %d not present in the report" % parent)

    if version >= 2:
        queries = report.get("queries")
        _expect(isinstance(queries, dict), "missing queries object")
        for name, query in queries.items():
            _expect(isinstance(query, dict),
                    "query %r not an object" % name)
            where = "query %r: " % name
            _expect(_is_number(query.get("id")) and query["id"] > 0,
                    where + "missing positive numeric id")
            _validate_instruments(query, version, where)
            for field in ("spans", "spans_dropped"):
                _expect(_is_number(query.get(field)) and query[field] >= 0,
                        where + "field %r not a non-negative number" % field)
            _expect(isinstance(query.get("trip"), str),
                    where + "missing trip string")


def extract_reports(text, origin):
    """Yields (label, report) pairs for every run report found in `text`."""
    stripped = text.strip()
    if not stripped:
        raise SchemaError("%s: empty input" % origin)
    try:
        document = json.loads(stripped)
    except ValueError:
        document = None
    if document is not None:
        if isinstance(document, dict) and "metrics" in document:
            yield ("%s (bench %r)" % (origin, document.get("bench")),
                   document["metrics"])
        else:
            yield (origin, document)
        return
    # Fall back to JSON-lines (bench metrics records).
    for lineno, line in enumerate(stripped.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except ValueError as error:
            raise SchemaError("%s:%d: not JSON: %s" % (origin, lineno, error))
        if isinstance(record, dict) and "metrics" in record:
            yield ("%s:%d (bench %r)" % (origin, lineno, record.get("bench")),
                   record["metrics"])
        else:
            yield ("%s:%d" % (origin, lineno), record)


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("files", nargs="+", metavar="FILE",
                        help="run-report JSON or bench JSONL ('-' = stdin)")
    parser.add_argument("--require-counter", action="append", default=[],
                        metavar="NAME",
                        help="fail unless some report has NAME > 0 "
                             "(repeatable)")
    parser.add_argument("--require-trip", action="append", default=[],
                        metavar="REASON",
                        help="fail unless some query in some v2 report "
                             "tripped with REASON (repeatable)")
    args = parser.parse_args(argv)

    failures = 0
    reports = 0
    seen_counters = {}
    seen_trips = set()
    for path in args.files:
        try:
            text = (sys.stdin.read() if path == "-"
                    else open(path, "r", encoding="utf-8").read())
        except OSError as error:
            print("FAIL %s: %s" % (path, error), file=sys.stderr)
            failures += 1
            continue
        try:
            for label, report in extract_reports(text, path):
                validate_report(report)
                reports += 1
                for name, value in report["counters"].items():
                    seen_counters[name] = max(seen_counters.get(name, 0),
                                              value)
                for query in report.get("queries", {}).values():
                    if query["trip"]:
                        seen_trips.add(query["trip"])
                print("ok   %s (%d counters, %d spans, %d queries)"
                      % (label, len(report["counters"]),
                         len(report["spans"]),
                         len(report.get("queries", {}))))
        except SchemaError as error:
            print("FAIL %s" % error, file=sys.stderr)
            failures += 1

    for name in args.require_counter:
        if seen_counters.get(name, 0) <= 0:
            print("FAIL required counter %r missing or zero" % name,
                  file=sys.stderr)
            failures += 1

    for reason in args.require_trip:
        if reason not in seen_trips:
            print("FAIL no query tripped with reason %r" % reason,
                  file=sys.stderr)
            failures += 1

    if failures:
        return 1
    print("validated %d report(s)" % reports)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
