#!/usr/bin/env python3
"""Validate psc::obs run-report JSON against the documented schema.

Accepts either format the toolchain emits:
  * a single run report object, as written by `psc ... --metrics-out=FILE`
    (schema_version 1; see src/psc/obs/report.h), or
  * JSON-lines of bench metrics records, one
    `{"bench": <name>, "metrics": <run report>}` object per line, as
    appended by the benchmarks when PSC_BENCH_METRICS_OUT is set.

Usage:
  check_metrics_schema.py FILE...
  check_metrics_schema.py --require-counter consistency.checks FILE
  psc check data/example51.psc --metrics-out=/dev/stdout --quiet \
      | check_metrics_schema.py -

Exits 0 when every report validates (and every required counter is
present with a positive value in at least one report), 1 otherwise.
This mirrors obs::ValidateRunReportJson so CI can check artifacts
without rebuilding the C++ toolchain.
"""

import argparse
import json
import sys

SCHEMA_VERSION = 1
HISTOGRAM_FIELDS = ("count", "sum", "min", "max", "mean", "p50", "p90", "p99")
SPAN_NUMERIC_FIELDS = ("parent", "depth", "start_us", "duration_us")


class SchemaError(Exception):
    pass


def _expect(condition, message):
    if not condition:
        raise SchemaError(message)


def _is_number(value):
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def validate_report(report):
    """Raises SchemaError when `report` is not a valid run report."""
    _expect(isinstance(report, dict), "document not an object")
    version = report.get("schema_version")
    _expect(_is_number(version), "missing numeric schema_version")
    _expect(int(version) == SCHEMA_VERSION,
            "unsupported schema_version %r" % (version,))

    counters = report.get("counters")
    _expect(isinstance(counters, dict), "missing counters object")
    for name, value in counters.items():
        _expect(_is_number(value) and value >= 0,
                "counter %r not a non-negative number" % name)

    gauges = report.get("gauges")
    _expect(isinstance(gauges, dict), "missing gauges object")
    for name, value in gauges.items():
        _expect(_is_number(value), "gauge %r not numeric" % name)

    histograms = report.get("histograms")
    _expect(isinstance(histograms, dict), "missing histograms object")
    for name, snapshot in histograms.items():
        _expect(isinstance(snapshot, dict),
                "histogram %r not an object" % name)
        for field in HISTOGRAM_FIELDS:
            _expect(_is_number(snapshot.get(field)) and snapshot[field] >= 0,
                    "histogram %r field %r invalid" % (name, field))
        _expect(snapshot["count"] > 0 or snapshot["sum"] == 0,
                "histogram %r has sum without samples" % name)
        _expect(snapshot["min"] <= snapshot["max"],
                "histogram %r has min > max" % name)

    spans = report.get("spans")
    _expect(isinstance(spans, list), "missing spans array")
    span_ids = set()
    for span in spans:
        _expect(isinstance(span, dict), "span not an object")
        _expect(_is_number(span.get("id")), "span missing numeric id")
        _expect(isinstance(span.get("name"), str), "span missing name")
        for field in SPAN_NUMERIC_FIELDS:
            _expect(_is_number(span.get(field)),
                    "span missing field %r" % field)
        span_ids.add(int(span["id"]))

    dropped = report.get("spans_dropped")
    _expect(_is_number(dropped) and dropped >= 0,
            "missing numeric spans_dropped")
    # Parent links are only guaranteed complete when nothing was dropped.
    if dropped == 0:
        for span in spans:
            parent = int(span["parent"])
            _expect(parent == -1 or parent in span_ids,
                    "span parent %d not present in the report" % parent)


def extract_reports(text, origin):
    """Yields (label, report) pairs for every run report found in `text`."""
    stripped = text.strip()
    if not stripped:
        raise SchemaError("%s: empty input" % origin)
    try:
        document = json.loads(stripped)
    except ValueError:
        document = None
    if document is not None:
        if isinstance(document, dict) and "metrics" in document:
            yield ("%s (bench %r)" % (origin, document.get("bench")),
                   document["metrics"])
        else:
            yield (origin, document)
        return
    # Fall back to JSON-lines (bench metrics records).
    for lineno, line in enumerate(stripped.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except ValueError as error:
            raise SchemaError("%s:%d: not JSON: %s" % (origin, lineno, error))
        if isinstance(record, dict) and "metrics" in record:
            yield ("%s:%d (bench %r)" % (origin, lineno, record.get("bench")),
                   record["metrics"])
        else:
            yield ("%s:%d" % (origin, lineno), record)


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("files", nargs="+", metavar="FILE",
                        help="run-report JSON or bench JSONL ('-' = stdin)")
    parser.add_argument("--require-counter", action="append", default=[],
                        metavar="NAME",
                        help="fail unless some report has NAME > 0 "
                             "(repeatable)")
    args = parser.parse_args(argv)

    failures = 0
    reports = 0
    seen_counters = {}
    for path in args.files:
        try:
            text = (sys.stdin.read() if path == "-"
                    else open(path, "r", encoding="utf-8").read())
        except OSError as error:
            print("FAIL %s: %s" % (path, error), file=sys.stderr)
            failures += 1
            continue
        try:
            for label, report in extract_reports(text, path):
                validate_report(report)
                reports += 1
                for name, value in report["counters"].items():
                    seen_counters[name] = max(seen_counters.get(name, 0),
                                              value)
                print("ok   %s (%d counters, %d spans)"
                      % (label, len(report["counters"]),
                         len(report["spans"])))
        except SchemaError as error:
            print("FAIL %s" % error, file=sys.stderr)
            failures += 1

    for name in args.require_counter:
        if seen_counters.get(name, 0) <= 0:
            print("FAIL required counter %r missing or zero" % name,
                  file=sys.stderr)
            failures += 1

    if failures:
        return 1
    print("validated %d report(s)" % reports)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
