#!/usr/bin/env python3
"""Validate psc Chrome-trace JSON as written by `psc ... --trace-out=FILE`.

The exporter (src/psc/obs/chrome_trace.cc) emits the Trace Event Format
understood by chrome://tracing and Perfetto: one object with
`traceEvents` (X duration events for spans, M metadata events naming the
process and per-lane tracks, C counter events) and `otherData` carrying
the psc run-report schema version and the span-drop count.

Usage:
  check_trace_schema.py trace.json
  check_trace_schema.py --require-spans 1 --expect-single-root trace.json

Checks, in order of strictness:
  * structural: traceEvents is a list; every X event has numeric
    ts/dur >= 0, a name, pid/tid, and args with id/parent/scope;
  * referential (only when otherData.spans_dropped == 0): every X
    event's parent is -1 or the id of another X event;
  * --require-spans N: at least N X events are present;
  * --expect-single-root: for every query scope (args.scope > 0; scope 0
    is scope-free global work), exactly one X event's parent falls
    outside that scope's id set — i.e. the spans of one query form one
    connected tree regardless of how many threads ran it.

Exits 0 when every file passes, 1 otherwise.
"""

import argparse
import json
import sys


class SchemaError(Exception):
    pass


def _expect(condition, message):
    if not condition:
        raise SchemaError(message)


def _is_number(value):
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def load_events(document):
    """Returns (x_events, spans_dropped) after structural validation."""
    _expect(isinstance(document, dict), "document not an object")
    events = document.get("traceEvents")
    _expect(isinstance(events, list), "missing traceEvents array")

    other = document.get("otherData")
    _expect(isinstance(other, dict), "missing otherData object")
    dropped = other.get("spans_dropped")
    _expect(_is_number(dropped) and dropped >= 0,
            "otherData missing numeric spans_dropped")

    x_events = []
    for index, event in enumerate(events):
        _expect(isinstance(event, dict), "event %d not an object" % index)
        phase = event.get("ph")
        _expect(isinstance(phase, str) and phase,
                "event %d missing phase" % index)
        if phase != "X":
            continue
        where = "X event %d: " % index
        _expect(isinstance(event.get("name"), str) and event["name"],
                where + "missing name")
        for field in ("pid", "tid"):
            _expect(_is_number(event.get(field)),
                    where + "missing numeric %r" % field)
        for field in ("ts", "dur"):
            _expect(_is_number(event.get(field)) and event[field] >= 0,
                    where + "field %r not a non-negative number" % field)
        args = event.get("args")
        _expect(isinstance(args, dict), where + "missing args object")
        for field in ("id", "parent", "scope"):
            _expect(_is_number(args.get(field)),
                    where + "args missing numeric %r" % field)
        x_events.append(event)
    return x_events, int(dropped)


def validate_trace(document, require_spans, expect_single_root):
    x_events, dropped = load_events(document)

    _expect(len(x_events) >= require_spans,
            "expected at least %d span event(s), found %d"
            % (require_spans, len(x_events)))

    # Parent links are only guaranteed complete when nothing was dropped.
    if dropped == 0:
        ids = {int(e["args"]["id"]) for e in x_events}
        for event in x_events:
            parent = int(event["args"]["parent"])
            _expect(parent == -1 or parent in ids,
                    "span %r parent %d not present in the trace"
                    % (event["name"], parent))

    if expect_single_root:
        _expect(dropped == 0,
                "--expect-single-root needs a complete trace "
                "(spans_dropped=%d)" % dropped)
        by_scope = {}
        for event in x_events:
            scope = int(event["args"]["scope"])
            if scope == 0:  # scope-free global work, unconstrained
                continue
            by_scope.setdefault(scope, []).append(event)
        _expect(by_scope, "--expect-single-root found no query-scoped spans")
        for scope, group in sorted(by_scope.items()):
            ids = {int(e["args"]["id"]) for e in group}
            roots = [e for e in group
                     if int(e["args"]["parent"]) not in ids]
            _expect(len(roots) == 1,
                    "scope %d has %d roots (%s), expected 1 — the query's "
                    "spans do not form one connected tree"
                    % (scope, len(roots),
                       ", ".join(sorted(r["name"] for r in roots)) or "none"))
    return len(x_events)


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("files", nargs="+", metavar="FILE",
                        help="Chrome trace JSON ('-' = stdin)")
    parser.add_argument("--require-spans", type=int, default=0, metavar="N",
                        help="fail unless at least N span events are present")
    parser.add_argument("--expect-single-root", action="store_true",
                        help="fail unless every query scope's spans form "
                             "exactly one connected tree")
    args = parser.parse_args(argv)

    failures = 0
    for path in args.files:
        try:
            text = (sys.stdin.read() if path == "-"
                    else open(path, "r", encoding="utf-8").read())
            document = json.loads(text)
        except (OSError, ValueError) as error:
            print("FAIL %s: %s" % (path, error), file=sys.stderr)
            failures += 1
            continue
        try:
            spans = validate_trace(document, args.require_spans,
                                   args.expect_single_root)
            print("ok   %s (%d span events)" % (path, spans))
        except SchemaError as error:
            print("FAIL %s: %s" % (path, error), file=sys.stderr)
            failures += 1
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
