# Test driver for bench smoke ctests: runs a benchmark binary with
# --smoke and PSC_BENCH_METRICS_OUT, then validates the emitted metrics
# record with check_metrics_schema.py. The benchmark itself exits
# non-zero on a cross-check mismatch, so this doubles as a correctness
# test. Invoked as
#   cmake -DBENCH=... -DPYTHON=... -DCHECKER=...
#         -DOUTPUT=... [-DREQUIRED_COUNTERS=a;b;c] -P run_bench_smoke_check.cmake

file(REMOVE "${OUTPUT}")
execute_process(
  COMMAND ${CMAKE_COMMAND} -E env "PSC_BENCH_METRICS_OUT=${OUTPUT}"
          "${BENCH}" --smoke
  RESULT_VARIABLE bench_result)
if(NOT bench_result EQUAL 0)
  message(FATAL_ERROR "bench smoke failed with status ${bench_result}")
endif()

set(checker_args "${OUTPUT}")
foreach(counter IN LISTS REQUIRED_COUNTERS)
  list(PREPEND checker_args --require-counter "${counter}")
endforeach()
execute_process(
  COMMAND "${PYTHON}" "${CHECKER}" ${checker_args}
  RESULT_VARIABLE checker_result)
if(NOT checker_result EQUAL 0)
  message(FATAL_ERROR
      "check_metrics_schema.py rejected ${OUTPUT} (status ${checker_result})")
endif()
