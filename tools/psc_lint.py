#!/usr/bin/env python3
"""Project-invariant linter for the psc source tree.

Enforces the concurrency and observability conventions the compiler
cannot (see DESIGN.md §14):

  raw-sync       No raw std::mutex / std::shared_mutex / std::lock_guard /
                 std::unique_lock / std::scoped_lock / std::shared_lock /
                 std::condition_variable(_any) outside src/psc/sync/.
                 Everything locks through psc::sync so every mutex carries
                 thread-safety annotations and a deadlock-detecting rank.
  raw-clock      No std::this_thread::sleep_for/sleep_until and no raw
                 steady_clock/system_clock/high_resolution_clock ::now()
                 in solver code. Time belongs to psc::limits (deadlines)
                 and psc::obs (trace timestamps); sleeping in a solver
                 hides latency from both. Allowed in src/psc/sync/,
                 src/psc/limits/ and src/psc/obs/ only.
  metric-prefix  Every metric name passed to a PSC_OBS_* macro must carry
                 one of the subsystem prefixes registered in
                 tools/check_metrics_schema.py (KNOWN_PREFIXES), so a
                 typo'd name fails here instead of shipping an instrument
                 the schema check then rejects at runtime.
  detach         No std::thread::detach(): a detached thread outlives
                 every shutdown protocol in the tree (Engine::Drain, pool
                 joins) and turns clean process exit into a race.

Waivers: append `// psc-lint: allow(<rule>)` to the offending line, with
a justification comment nearby. Waivers are themselves counted and
reported so they stay auditable.

Usage:
  psc_lint.py [--root DIR] [PATH...]        # default: src/ under --root
  psc_lint.py --compile-commands build/compile_commands.json
  psc_lint.py --fix-suggestions             # hints per finding
  psc_lint.py --self-test                   # run the embedded samples

Exit status: 0 clean, 1 findings, 2 usage/environment error.
"""

import argparse
import json
import os
import re
import sys

# Directories (relative to the source root) whose files may use raw
# synchronization primitives: the annotated wrappers themselves.
RAW_SYNC_ALLOWED = ("src/psc/sync/",)

# Directories whose files may read raw clocks or sleep: the sync layer
# (condition waits), the deadline/budget machinery, and the trace clock.
RAW_CLOCK_ALLOWED = ("src/psc/sync/", "src/psc/limits/", "src/psc/obs/")

RAW_SYNC_PATTERN = re.compile(
    r"std::(?:mutex|shared_mutex|timed_mutex|recursive_mutex"
    r"|lock_guard|unique_lock|scoped_lock|shared_lock"
    r"|condition_variable(?:_any)?)\b")

RAW_CLOCK_PATTERN = re.compile(
    r"std::this_thread::sleep_(?:for|until)"
    r"|(?:steady_clock|system_clock|high_resolution_clock)::now\s*\(")

# PSC_OBS_COUNTER_ADD("name", ...), PSC_OBS_SPAN("name"), etc. — the
# first argument must be a string literal carrying a known prefix.
METRIC_MACRO_PATTERN = re.compile(
    r"PSC_OBS_(?:COUNTER_ADD|COUNTER_INC|GAUGE_SET|GAUGE_MAX"
    r"|HISTOGRAM_RECORD|SPAN)\s*\(\s*\"([^\"]*)\"")

DETACH_PATTERN = re.compile(r"\.\s*detach\s*\(\s*\)")

WAIVER_PATTERN = re.compile(r"//\s*psc-lint:\s*allow\(([a-z-]+(?:\s*,\s*[a-z-]+)*)\)")

SOURCE_EXTENSIONS = (".h", ".cc", ".cpp", ".hpp", ".cxx")

FIX_SUGGESTIONS = {
    "raw-sync": ("use psc::sync::Mutex/SharedMutex with sync::MutexLock/"
                 "ReaderLock/WriterLock and sync::CondVar "
                 "(src/psc/sync/mutex.h)"),
    "raw-clock": ("use obs::TraceNowMicros() for timestamps or "
                  "limits::Deadline for timeouts; sleeping in solver code "
                  "is never the answer"),
    "metric-prefix": ("register the subsystem prefix in "
                      "tools/check_metrics_schema.py KNOWN_PREFIXES or fix "
                      "the metric name"),
    "detach": ("keep the std::thread joinable and join it from the owner's "
               "destructor or shutdown path"),
}


def load_known_prefixes(root):
    """Parses KNOWN_PREFIXES out of check_metrics_schema.py so the two
    tools cannot drift apart."""
    path = os.path.join(root, "tools", "check_metrics_schema.py")
    try:
        text = open(path, "r", encoding="utf-8").read()
    except OSError as error:
        raise RuntimeError("cannot read %s: %s" % (path, error))
    match = re.search(r"KNOWN_PREFIXES\s*=\s*\(([^)]*)\)", text, re.DOTALL)
    if match is None:
        raise RuntimeError("KNOWN_PREFIXES tuple not found in %s" % path)
    prefixes = tuple(re.findall(r"\"([^\"]+)\"", match.group(1)))
    if not prefixes:
        raise RuntimeError("KNOWN_PREFIXES parsed empty from %s" % path)
    return prefixes


class Finding(object):
    def __init__(self, path, lineno, rule, message):
        self.path = path
        self.lineno = lineno
        self.rule = rule
        self.message = message

    def render(self, fix_suggestions):
        line = "%s:%d: [%s] %s" % (self.path, self.lineno, self.rule,
                                   self.message)
        if fix_suggestions:
            line += "\n    fix: " + FIX_SUGGESTIONS[self.rule]
        return line


def strip_line_comment(line):
    """Drops // comments (string-literal-naive but fine for our idiom:
    the patterns we match never appear inside string literals except in
    this linter's own self-test, which is not scanned)."""
    index = line.find("//")
    return line if index < 0 else line[:index]


def relative_to(path, root):
    rel = os.path.relpath(os.path.abspath(path), os.path.abspath(root))
    return rel.replace(os.sep, "/")


def lint_lines(rel_path, lines, known_prefixes):
    """Yields (Finding, waived) tuples for one file's lines."""
    in_block_comment = False
    sync_exempt = any(rel_path.startswith(d) for d in RAW_SYNC_ALLOWED)
    clock_exempt = any(rel_path.startswith(d) for d in RAW_CLOCK_ALLOWED)
    for lineno, raw_line in enumerate(lines, start=1):
        waiver = WAIVER_PATTERN.search(raw_line)
        waived_rules = set()
        if waiver is not None:
            waived_rules = {r.strip() for r in waiver.group(1).split(",")}
        line = raw_line
        # Crude block-comment tracking: enough for the tree's /// style.
        if in_block_comment:
            end = line.find("*/")
            if end < 0:
                continue
            line = line[end + 2:]
            in_block_comment = False
        start = line.find("/*")
        if start >= 0:
            end = line.find("*/", start + 2)
            if end < 0:
                in_block_comment = True
                line = line[:start]
            else:
                line = line[:start] + line[end + 2:]
        code = strip_line_comment(line)

        def emit(rule, message):
            finding = Finding(rel_path, lineno, rule, message)
            return (finding, rule in waived_rules)

        if not sync_exempt:
            match = RAW_SYNC_PATTERN.search(code)
            if match is not None:
                yield emit("raw-sync",
                           "raw synchronization primitive %r outside "
                           "psc/sync/" % match.group(0))
        if not clock_exempt:
            match = RAW_CLOCK_PATTERN.search(code)
            if match is not None:
                yield emit("raw-clock",
                           "raw clock/sleep %r in solver code"
                           % match.group(0).strip())
        for match in METRIC_MACRO_PATTERN.finditer(code):
            name = match.group(1)
            if not any(name.startswith(p) for p in known_prefixes):
                yield emit("metric-prefix",
                           "metric name %r outside the registered prefixes "
                           "(%s)" % (name, ", ".join(p.rstrip(".")
                                                     for p in known_prefixes)))
        match = DETACH_PATTERN.search(code)
        if match is not None and "thread" in code:
            yield emit("detach", "detached thread")


def collect_files(root, paths, compile_commands):
    files = []
    seen = set()

    def add(path):
        abspath = os.path.abspath(path)
        if abspath in seen:
            return
        seen.add(abspath)
        files.append(abspath)

    if compile_commands:
        try:
            commands = json.load(open(compile_commands, "r",
                                      encoding="utf-8"))
        except (OSError, ValueError) as error:
            raise RuntimeError("cannot load %s: %s"
                               % (compile_commands, error))
        for entry in commands:
            path = entry.get("file", "")
            if not os.path.isabs(path):
                path = os.path.join(entry.get("directory", ""), path)
            rel = relative_to(path, root)
            if rel.startswith("src/") and path.endswith(SOURCE_EXTENSIONS):
                add(path)
        # The database only lists translation units; scan headers too.
        paths = paths or [os.path.join(root, "src")]

    if not compile_commands and not paths:
        paths = [os.path.join(root, "src")]

    for path in paths or []:
        if os.path.isdir(path):
            for directory, _, names in sorted(os.walk(path)):
                for name in sorted(names):
                    if name.endswith(SOURCE_EXTENSIONS):
                        add(os.path.join(directory, name))
        elif os.path.isfile(path):
            add(path)
        else:
            raise RuntimeError("no such file or directory: %s" % path)
    return files


def run_lint(root, paths, compile_commands, fix_suggestions):
    known_prefixes = load_known_prefixes(root)
    files = collect_files(root, paths, compile_commands)
    if not files:
        print("psc_lint: no source files found", file=sys.stderr)
        return 2
    findings = []
    waived = 0
    for path in files:
        rel = relative_to(path, root)
        try:
            lines = open(path, "r", encoding="utf-8").read().splitlines()
        except OSError as error:
            print("psc_lint: cannot read %s: %s" % (path, error),
                  file=sys.stderr)
            return 2
        for finding, is_waived in lint_lines(rel, lines, known_prefixes):
            if is_waived:
                waived += 1
            else:
                findings.append(finding)
    for finding in findings:
        print(finding.render(fix_suggestions))
    summary = "psc_lint: %d file(s), %d finding(s)" % (len(files),
                                                       len(findings))
    if waived:
        summary += ", %d waived" % waived
    print(summary)
    return 1 if findings else 0


# --- self test ------------------------------------------------------------

SELF_TEST_SAMPLES = [
    # (relative path, line, expected rules)
    ("src/psc/foo/bar.cc", "std::mutex mu;", ["raw-sync"]),
    ("src/psc/foo/bar.cc", "std::lock_guard<std::mutex> l(mu);",
     ["raw-sync"]),
    ("src/psc/foo/bar.cc", "std::condition_variable cv;", ["raw-sync"]),
    ("src/psc/sync/mutex.h", "std::mutex mu_;", []),  # the wrapper itself
    ("src/psc/foo/bar.cc",
     "auto t = std::chrono::steady_clock::now();", ["raw-clock"]),
    ("src/psc/foo/bar.cc",
     "std::this_thread::sleep_for(std::chrono::seconds(1));",
     ["raw-clock"]),
    ("src/psc/limits/budget.cc",
     "auto t = std::chrono::steady_clock::now();", []),  # deadline code
    ("src/psc/obs/trace.cc",
     "auto t = std::chrono::steady_clock::now();", []),  # the trace clock
    ("src/psc/foo/bar.cc",
     'PSC_OBS_COUNTER_INC("exec.tasks_submitted");', []),
    ("src/psc/foo/bar.cc",
     'PSC_OBS_COUNTER_INC("bogus.tasks_submitted");', ["metric-prefix"]),
    ("src/psc/foo/bar.cc", 'PSC_OBS_SPAN("nope.span");',
     ["metric-prefix"]),
    ("src/psc/foo/bar.cc", "worker_thread.detach();", ["detach"]),
    ("src/psc/foo/bar.cc", "// std::mutex in a comment is fine", []),
    ("src/psc/foo/bar.cc",
     "std::mutex special;  // psc-lint: allow(raw-sync)", []),
    ("src/psc/foo/bar.cc", "sync::MutexLock lock(&mu_);", []),
]


def run_self_test(root):
    known_prefixes = load_known_prefixes(root)
    failures = 0
    for rel_path, line, expected in SELF_TEST_SAMPLES:
        got = sorted({finding.rule
                      for finding, is_waived in
                      lint_lines(rel_path, [line], known_prefixes)
                      if not is_waived})
        if got != sorted(expected):
            print("SELF-TEST FAIL %s: %r -> %r (want %r)"
                  % (rel_path, line, got, sorted(expected)),
                  file=sys.stderr)
            failures += 1
    # Every rule string used in waivers/suggestions must be a real rule.
    for rule in FIX_SUGGESTIONS:
        if rule not in ("raw-sync", "raw-clock", "metric-prefix", "detach"):
            print("SELF-TEST FAIL unknown rule %r" % rule, file=sys.stderr)
            failures += 1
    # --fix-suggestions rendering: every rule must produce a hint line.
    for rule in ("raw-sync", "raw-clock", "metric-prefix", "detach"):
        rendered = Finding("src/psc/foo/bar.cc", 1, rule, "sample").render(
            fix_suggestions=True)
        if "\n    fix: " not in rendered:
            print("SELF-TEST FAIL no fix suggestion rendered for %r" % rule,
                  file=sys.stderr)
            failures += 1
    if failures:
        print("psc_lint --self-test: %d failure(s)" % failures,
              file=sys.stderr)
        return 1
    print("psc_lint --self-test: %d sample(s) ok"
          % len(SELF_TEST_SAMPLES))
    return 0


def main(argv):
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0],
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("paths", nargs="*", metavar="PATH",
                        help="files or directories to lint "
                             "(default: <root>/src)")
    parser.add_argument("--root", default=None,
                        help="repository root (default: the directory "
                             "containing this script's parent)")
    parser.add_argument("--compile-commands", metavar="JSON",
                        help="lint the src/ files listed in a "
                             "compile_commands.json database")
    parser.add_argument("--fix-suggestions", action="store_true",
                        help="print a fix hint under every finding")
    parser.add_argument("--self-test", action="store_true",
                        help="check the linter against embedded samples")
    args = parser.parse_args(argv)

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    try:
        if args.self_test:
            return run_self_test(root)
        return run_lint(root, args.paths, args.compile_commands,
                        args.fix_suggestions)
    except RuntimeError as error:
        print("psc_lint: %s" % error, file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
