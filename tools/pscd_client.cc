// pscd_client — minimal scripted client for pscd.
//
//   pscd_client --unix /tmp/pscd.sock < session.jsonl
//   pscd_client --port 7411 --script session.jsonl
//
// Reads one protocol request per line (blank lines and `#` comments are
// skipped), sends each to the server, waits for its response line and
// prints it to stdout — strict request/response lockstep, so the output
// order equals the script order and concurrent clients can be compared
// line-for-line against one-shot CLI runs. Exits nonzero on connection
// failure, on a truncated response stream, or (with --check-ok) on any
// response with "ok":false.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: pscd_client (--unix PATH | --port N) "
               "[--script FILE] [--check-ok]\n");
  return 2;
}

int ConnectUnix(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_un address;
  std::memset(&address, 0, sizeof(address));
  address.sun_family = AF_UNIX;
  if (path.size() >= sizeof(address.sun_path)) {
    ::close(fd);
    return -1;
  }
  std::strncpy(address.sun_path, path.c_str(), sizeof(address.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&address), sizeof(address)) !=
      0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

int ConnectTcp(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in address;
  std::memset(&address, 0, sizeof(address));
  address.sin_family = AF_INET;
  address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  address.sin_port = htons(static_cast<uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&address), sizeof(address)) !=
      0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool SendLine(int fd, const std::string& line) {
  std::string framed = line;
  framed.push_back('\n');
  size_t sent = 0;
  while (sent < framed.size()) {
    const ssize_t n =
        ::send(fd, framed.data() + sent, framed.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

/// Blocking read of the next newline-terminated response.
bool ReadLine(int fd, std::string* buffer, std::string* line) {
  for (;;) {
    const size_t newline = buffer->find('\n');
    if (newline != std::string::npos) {
      *line = buffer->substr(0, newline);
      buffer->erase(0, newline + 1);
      return true;
    }
    char chunk[4096];
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;
    buffer->append(chunk, static_cast<size_t>(n));
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string unix_path;
  int port = -1;
  std::string script;
  bool check_ok = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--unix" && i + 1 < argc) {
      unix_path = argv[++i];
    } else if (arg == "--port" && i + 1 < argc) {
      port = std::atoi(argv[++i]);
    } else if (arg == "--script" && i + 1 < argc) {
      script = argv[++i];
    } else if (arg == "--check-ok") {
      check_ok = true;
    } else {
      return Usage();
    }
  }
  if (unix_path.empty() && port < 0) return Usage();

  const int fd = unix_path.empty() ? ConnectTcp(port) : ConnectUnix(unix_path);
  if (fd < 0) {
    std::fprintf(stderr, "error: cannot connect (%s)\n", std::strerror(errno));
    return 1;
  }

  std::istream* input = &std::cin;
  std::ifstream file;
  if (!script.empty()) {
    file.open(script);
    if (!file) {
      std::fprintf(stderr, "error: cannot open '%s'\n", script.c_str());
      ::close(fd);
      return 1;
    }
    input = &file;
  }

  int exit_code = 0;
  std::string buffer;
  std::string request;
  while (std::getline(*input, request)) {
    if (request.empty() || request[0] == '#') continue;
    if (!SendLine(fd, request)) {
      std::fprintf(stderr, "error: send failed (%s)\n", std::strerror(errno));
      exit_code = 1;
      break;
    }
    std::string response;
    if (!ReadLine(fd, &buffer, &response)) {
      std::fprintf(stderr, "error: server closed before responding\n");
      exit_code = 1;
      break;
    }
    std::printf("%s\n", response.c_str());
    if (check_ok && response.find("\"ok\":false") != std::string::npos) {
      exit_code = 3;
    }
  }
  ::close(fd);
  return exit_code;
}
