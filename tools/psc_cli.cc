// psc — command-line front end for the library.
//
//   psc check <file>                        consistency + witness
//   psc print <file>                        parse and pretty-print
//   psc confidences <file> [options]        Section 5.1 base confidences
//   psc answer <file> "<query>" [options]   certain/possible/confidence
//   psc certain <file> "<query>"            certain-answer lower bound
//                                           (templates + view rewriting)
//   psc consensus <file>                    source trust report
//   psc audit <file>                        blame / maximal subsets /
//                                           uniform relaxation
//
// Options:
//   --domain v1,v2,...   finite domain (integers or bare strings);
//                        default: every constant mentioned by the sources
//   --method exact|compositional|mc        (answer; default exact)
//   --samples N          Monte-Carlo samples  (answer --method mc)
//   --seed N             Monte-Carlo seed
//
// Source files use the text format documented in psc/parser/parser.h; see
// examples in the repository README.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "psc/consistency/diagnostics.h"
#include "psc/core/certain_answer.h"
#include "psc/core/query_system.h"
#include "psc/counting/consensus.h"
#include "psc/algebra/plan_compiler.h"
#include "psc/parser/parser.h"
#include "psc/rewriting/bucket_rewriter.h"
#include "psc/util/string_util.h"

namespace psc {
namespace {

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int Usage() {
  std::fprintf(stderr,
               "usage: psc "
               "<check|print|confidences|answer|certain|consensus|audit> "
               "<file> [\"query\"] [--domain v1,v2,...] "
               "[--method exact|compositional|mc] [--samples N] [--seed N]\n");
  return 2;
}

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream input(path);
  if (!input) {
    return Status::NotFound(StrCat("cannot open '", path, "'"));
  }
  std::ostringstream buffer;
  buffer << input.rdbuf();
  return buffer.str();
}

/// "1,2,abc" → {1, 2, "abc"}; integers parse as ints, the rest as strings.
std::vector<Value> ParseDomainFlag(const std::string& text) {
  std::vector<Value> domain;
  for (const std::string& raw : Split(text, ',')) {
    const std::string token = Trim(raw);
    if (token.empty()) continue;
    char* end = nullptr;
    const long long as_int = std::strtoll(token.c_str(), &end, 10);
    if (end != nullptr && *end == '\0' && end != token.c_str()) {
      domain.push_back(Value(static_cast<int64_t>(as_int)));
    } else {
      domain.push_back(Value(token));
    }
  }
  return domain;
}

struct CliOptions {
  std::string command;
  std::string file;
  std::string query;
  std::vector<Value> domain;
  bool domain_given = false;
  std::string method = "exact";
  uint64_t samples = 10000;
  uint64_t seed = 1;
};

Result<CliOptions> ParseArgs(int argc, char** argv) {
  CliOptions options;
  if (argc < 3) return Status::InvalidArgument("missing arguments");
  options.command = argv[1];
  options.file = argv[2];
  int position = 3;
  if (options.command == "answer" || options.command == "certain") {
    if (argc < 4) return Status::InvalidArgument("missing query");
    options.query = argv[3];
    position = 4;
  }
  for (int i = position; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> Result<std::string> {
      if (i + 1 >= argc) {
        return Status::InvalidArgument(StrCat("missing value for ", arg));
      }
      return std::string(argv[++i]);
    };
    if (arg == "--domain") {
      PSC_ASSIGN_OR_RETURN(const std::string value, next());
      options.domain = ParseDomainFlag(value);
      options.domain_given = true;
    } else if (arg == "--method") {
      PSC_ASSIGN_OR_RETURN(options.method, next());
    } else if (arg == "--samples") {
      PSC_ASSIGN_OR_RETURN(const std::string value, next());
      options.samples = std::strtoull(value.c_str(), nullptr, 10);
    } else if (arg == "--seed") {
      PSC_ASSIGN_OR_RETURN(const std::string value, next());
      options.seed = std::strtoull(value.c_str(), nullptr, 10);
    } else {
      return Status::InvalidArgument(StrCat("unknown flag ", arg));
    }
  }
  return options;
}

int RunCheck(const SourceCollection& collection) {
  auto system = QuerySystem::Create(collection);
  if (!system.ok()) return Fail(system.status());
  auto report = system->CheckConsistency();
  if (!report.ok()) return Fail(report.status());
  std::printf("verdict: %s\n", ConsistencyVerdictToString(report->verdict));
  std::printf("method:  %s\n", report->method.c_str());
  if (!report->unknown_reason.empty()) {
    std::printf("reason:  %s\n", report->unknown_reason.c_str());
  }
  if (report->witness.has_value()) {
    std::printf("witness possible world (%zu facts):\n%s\n",
                report->witness->size(),
                report->witness->ToString().c_str());
  }
  return report->verdict == ConsistencyVerdict::kInconsistent ? 3 : 0;
}

int RunConfidences(const SourceCollection& collection,
                   const std::vector<Value>& domain) {
  auto system = QuerySystem::Create(collection);
  if (!system.ok()) return Fail(system.status());
  auto table = system->BaseConfidences(domain);
  if (!table.ok()) return Fail(table.status());
  std::printf("|poss(S)| = %s\n", table->world_count.ToString().c_str());
  for (const TupleConfidence& entry : table->entries) {
    std::printf("%-30s %.6f\n", TupleToString(entry.tuple).c_str(),
                entry.confidence);
  }
  return 0;
}

int RunAnswer(const SourceCollection& collection, const CliOptions& options) {
  auto query = ParseQuery(options.query);
  if (!query.ok()) return Fail(query.status());
  auto system = QuerySystem::Create(collection);
  if (!system.ok()) return Fail(system.status());
  Result<QueryAnswer> answer = Status::Internal("unset");
  if (options.method == "exact") {
    answer = system->AnswerExact(*query, options.domain);
  } else if (options.method == "compositional") {
    answer = system->AnswerCompositional(*query, options.domain);
  } else if (options.method == "mc") {
    answer = system->AnswerMonteCarlo(*query, options.domain,
                                      options.samples, options.seed);
  } else {
    return Fail(Status::InvalidArgument(
        StrCat("unknown method '", options.method, "'")));
  }
  if (!answer.ok()) return Fail(answer.status());
  std::printf("method: %s  (worlds used: %llu)\n", answer->method.c_str(),
              static_cast<unsigned long long>(answer->worlds_used));
  std::printf("certain answer (%zu tuples):\n", answer->certain.size());
  for (const Tuple& tuple : answer->certain) {
    std::printf("  %s\n", TupleToString(tuple).c_str());
  }
  std::printf("possible answer with confidences (%zu tuples):\n",
              answer->confidences.size());
  for (const auto& [tuple, confidence] : answer->confidences.entries()) {
    std::printf("  %-28s %.6f\n", TupleToString(tuple).c_str(), confidence);
  }
  return 0;
}

int RunCertain(const SourceCollection& collection,
               const CliOptions& options) {
  auto query = ParseQuery(options.query);
  if (!query.ok()) return Fail(query.status());
  auto plan = CompileQuery(*query);
  if (!plan.ok()) return Fail(plan.status());
  auto bound = CertainAnswerLowerBound(collection, *plan);
  if (!bound.ok()) return Fail(bound.status());
  std::printf("template-based certain lower bound (%llu combinations%s):\n",
              static_cast<unsigned long long>(bound->combinations),
              bound->truncated ? ", truncated" : "");
  for (const Tuple& tuple : bound->certain) {
    std::printf("  %s\n", TupleToString(tuple).c_str());
  }
  BucketRewriter rewriter(&collection);
  auto rewritings = rewriter.Rewrite(*query);
  auto view_answer = rewriter.AnswerUsingViews(*query);
  if (rewritings.ok() && view_answer.ok()) {
    std::printf("view-based answer (%zu rewritings; certain when the used "
                "sources are fully sound):\n",
                rewritings->size());
    for (const Tuple& tuple : *view_answer) {
      std::printf("  %s\n", TupleToString(tuple).c_str());
    }
  }
  return 0;
}

int RunConsensus(const SourceCollection& collection) {
  auto instance = IdentityInstance::CreateOverExtensions(collection);
  if (!instance.ok()) return Fail(instance.status());
  auto consensus = ComputeSourceConsensus(*instance);
  if (!consensus.ok()) return Fail(consensus.status());
  std::printf("%-12s | %10s | %10s | %10s | %10s | %8s\n", "source",
              "E[sound]", "claimed", "E[compl]", "claimed", "slack");
  for (const SourceConsensus& entry : *consensus) {
    std::printf("%-12s | %10.4f | %10.4f | %10.4f | %10.4f | %+8.4f\n",
                entry.name.c_str(), entry.expected_soundness,
                entry.claimed_soundness, entry.expected_completeness,
                entry.claimed_completeness, entry.soundness_slack);
  }
  return 0;
}

int RunAudit(const SourceCollection& collection) {
  GeneralConsistencyChecker checker;
  auto report = checker.Check(collection);
  if (!report.ok()) return Fail(report.status());
  std::printf("verdict: %s\n", ConsistencyVerdictToString(report->verdict));
  if (report->verdict == ConsistencyVerdict::kConsistent) return 0;

  auto blames = BlameSources(collection, checker);
  if (!blames.ok()) return Fail(blames.status());
  std::printf("\nblame (verdict without each source):\n");
  for (const SourceBlame& blame : *blames) {
    std::printf("  %-12s -> %s\n", blame.source_name.c_str(),
                ConsistencyVerdictToString(blame.verdict_without));
  }

  auto maximal = MaximalConsistentSubcollections(collection, checker);
  if (maximal.ok()) {
    std::printf("\nmaximal consistent sub-collections:\n");
    for (const std::vector<std::string>& names : *maximal) {
      std::printf("  { %s }\n", Join(names, ", ").c_str());
    }
  }

  auto lambda = MaxUniformRelaxation(collection, checker);
  if (lambda.ok()) {
    std::printf("\nmax uniform relaxation factor: %s (= %.4f)\n",
                lambda->ToString().c_str(), lambda->ToDouble());
  }
  return 3;
}

int Main(int argc, char** argv) {
  auto options = ParseArgs(argc, argv);
  if (!options.ok()) {
    std::fprintf(stderr, "error: %s\n", options.status().ToString().c_str());
    return Usage();
  }
  auto text = ReadFile(options->file);
  if (!text.ok()) return Fail(text.status());
  auto collection = ParseCollection(*text);
  if (!collection.ok()) return Fail(collection.status());
  std::printf("parsed %zu source(s); global schema %s\n", collection->size(),
              collection->schema().ToString().c_str());

  if (!options->domain_given) {
    options->domain = collection->MentionedConstants();
  }

  const std::string& command = options->command;
  if (command == "check") return RunCheck(*collection);
  if (command == "print") {
    std::printf("%s\n", collection->ToString().c_str());
    return 0;
  }
  if (command == "confidences") {
    return RunConfidences(*collection, options->domain);
  }
  if (command == "answer") return RunAnswer(*collection, *options);
  if (command == "certain") return RunCertain(*collection, *options);
  if (command == "consensus") return RunConsensus(*collection);
  if (command == "audit") return RunAudit(*collection);
  return Usage();
}

}  // namespace
}  // namespace psc

int main(int argc, char** argv) { return psc::Main(argc, argv); }
