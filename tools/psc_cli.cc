// psc — command-line front end for the library.
//
//   psc check <file>                        consistency + witness
//   psc print <file>                        parse and pretty-print
//   psc confidences <file> [options]        Section 5.1 base confidences
//   psc answer <file> "<query>" [options]   certain/possible/confidence
//   psc certain <file> "<query>"            certain-answer lower bound
//                                           (templates + view rewriting)
//   psc consensus <file>                    source trust report
//   psc audit <file>                        blame / maximal subsets /
//                                           uniform relaxation
//
// Options:
//   --domain v1,v2,...   finite domain (integers or bare strings);
//                        default: every constant mentioned by the sources
//   --method exact|compositional|mc        (answer; default exact)
//   --samples N          Monte-Carlo samples  (answer --method mc)
//   --seed N             Monte-Carlo seed
//   --metrics-out PATH   write the observability run report as JSON
//   --trace              buffer trace spans and print the span tree
//   --trace-out PATH     write the spans as Chrome trace-event JSON
//                        (open in ui.perfetto.dev or chrome://tracing);
//                        implies span buffering like --trace
//   --trace-buffer N     trace-span buffer capacity (default 65536);
//                        spans past the capacity are counted in the
//                        trace.dropped counter instead of buffered
//   --quiet              suppress the one-line solver stats summary
//   --threads N          solver worker threads; 0 = auto (PSC_THREADS env
//                        or hardware concurrency), 1 = sequential
//   --deadline-ms N      wall-clock budget per solver call; on expiry
//                        consistency degrades to UNKNOWN, Monte-Carlo
//                        returns a truncated estimate, exact counting
//                        fails with "Deadline exceeded" (0 = unlimited)
//   --node-budget N      explored-node budget per solver call, same
//                        degradation contract (0 = unlimited)
//   --no-compiled-eval   evaluate conjunctive queries with the legacy
//                        nested-loop interpreter instead of compiled
//                        slot-based join plans (differential testing;
//                        results are identical, only speed differs)
//   --apply-delta PATH   streaming mode for check/answer: run once on the
//                        initial collection, then apply each batch of the
//                        delta script at PATH (lines "+ Src(t)" /
//                        "- Src(t)", batches separated by "--", see
//                        psc/delta/delta_script.h) and re-run, keeping
//                        consistency witnesses, indexes and answers warm
//                        through the incremental delta engine
//
// Source files use the text format documented in psc/parser/parser.h; see
// examples in the repository README.

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "psc/consistency/diagnostics.h"
#include "psc/core/certain_answer.h"
#include "psc/core/query_system.h"
#include "psc/delta/delta_script.h"
#include "psc/delta/incremental.h"
#include "psc/counting/consensus.h"
#include "psc/algebra/plan_compiler.h"
#include "psc/limits/budget.h"
#include "psc/obs/chrome_trace.h"
#include "psc/obs/log.h"
#include "psc/obs/report.h"
#include "psc/obs/scope.h"
#include "psc/obs/trace.h"
#include "psc/parser/parser.h"
#include "psc/relational/query_plan.h"
#include "psc/rewriting/bucket_rewriter.h"
#include "psc/tableau/template_builder.h"
#include "psc/util/bigint.h"
#include "psc/util/string_util.h"

namespace psc {
namespace {

/// ^C / SIGTERM handling. The handler must not printf, allocate or lock —
/// it only calls `CancelToken::Cancel()`, a relaxed atomic store, which is
/// async-signal-safe. Every solver call adopts this token (via
/// QuerySystem::Options::cancel / CliBudget), so an interrupt degrades the
/// in-flight command gracefully (UNKNOWN verdict, truncated answer,
/// DeadlineExceeded) and control returns to Main, where the
/// --metrics-out/--trace-out artifact writers still run instead of the
/// process dying with the report unwritten. A second signal restores the
/// default disposition, so a wedged run can still be killed.
limits::CancelToken& InterruptToken() {
  static limits::CancelToken token;
  return token;
}

void HandleInterrupt(int signo) {
  InterruptToken().Cancel();
  std::signal(signo, SIG_DFL);
}

void InstallInterruptHandler() {
  (void)InterruptToken();  // construct before any signal can arrive
  std::signal(SIGINT, HandleInterrupt);
  std::signal(SIGTERM, HandleInterrupt);
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int Usage() {
  std::fprintf(stderr,
               "usage: psc "
               "<check|print|confidences|answer|certain|consensus|audit> "
               "<file> [\"query\"] [--domain v1,v2,...] "
               "[--method exact|compositional|mc] [--samples N] [--seed N] "
               "[--metrics-out PATH] [--trace] [--trace-out PATH] "
               "[--trace-buffer N] [--quiet] [--threads N] "
               "[--deadline-ms N] [--node-budget N] [--no-compiled-eval] "
               "[--apply-delta PATH]\n");
  return 2;
}

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream input(path);
  if (!input) {
    return Status::NotFound(StrCat("cannot open '", path, "'"));
  }
  std::ostringstream buffer;
  buffer << input.rdbuf();
  return buffer.str();
}

struct CliOptions {
  std::string command;
  std::string file;
  std::string query;
  std::vector<Value> domain;
  bool domain_given = false;
  std::string method = "exact";
  uint64_t samples = 10000;
  uint64_t seed = 1;
  std::string metrics_out;
  /// Chrome trace-event JSON output path; implies span buffering.
  std::string trace_out;
  /// Trace-span buffer capacity; 0 keeps the default (65536).
  size_t trace_buffer = 0;
  bool trace = false;
  bool quiet = false;
  /// Per-command telemetry scope, installed by Main around the solving
  /// commands (null for `print`).
  obs::Scope scope;
  /// 0 = auto (PSC_THREADS env, then hardware concurrency).
  size_t threads = 0;
  /// Wall-clock deadline per solver call in ms; 0 = unlimited.
  int64_t deadline_ms = 0;
  /// Explored-node budget per solver call; 0 = unlimited.
  uint64_t node_budget = 0;
  /// false = legacy interpreter for conjunctive-query evaluation.
  bool use_compiled_eval = true;
  /// Delta script path enabling the streaming mode (empty = off).
  std::string apply_delta;
};

Result<CliOptions> ParseArgs(int argc, char** argv) {
  CliOptions options;
  if (argc < 3) return Status::InvalidArgument("missing arguments");
  options.command = argv[1];
  options.file = argv[2];
  int position = 3;
  if (options.command == "answer" || options.command == "certain") {
    if (argc < 4) return Status::InvalidArgument("missing query");
    options.query = argv[3];
    position = 4;
  }
  for (int i = position; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> Result<std::string> {
      if (i + 1 >= argc) {
        return Status::InvalidArgument(StrCat("missing value for ", arg));
      }
      return std::string(argv[++i]);
    };
    if (arg == "--domain") {
      PSC_ASSIGN_OR_RETURN(const std::string value, next());
      options.domain = ParseDomainList(value);
      options.domain_given = true;
    } else if (arg == "--method") {
      PSC_ASSIGN_OR_RETURN(options.method, next());
    } else if (arg == "--samples") {
      PSC_ASSIGN_OR_RETURN(const std::string value, next());
      options.samples = std::strtoull(value.c_str(), nullptr, 10);
    } else if (arg == "--seed") {
      PSC_ASSIGN_OR_RETURN(const std::string value, next());
      options.seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (arg == "--metrics-out") {
      PSC_ASSIGN_OR_RETURN(options.metrics_out, next());
    } else if (arg.rfind("--metrics-out=", 0) == 0) {
      options.metrics_out = arg.substr(std::strlen("--metrics-out="));
      if (options.metrics_out.empty()) {
        return Status::InvalidArgument("empty path for --metrics-out");
      }
    } else if (arg == "--trace-out") {
      PSC_ASSIGN_OR_RETURN(options.trace_out, next());
    } else if (arg.rfind("--trace-out=", 0) == 0) {
      options.trace_out = arg.substr(std::strlen("--trace-out="));
      if (options.trace_out.empty()) {
        return Status::InvalidArgument("empty path for --trace-out");
      }
    } else if (arg == "--trace-buffer") {
      PSC_ASSIGN_OR_RETURN(const std::string value, next());
      char* end = nullptr;
      errno = 0;
      const unsigned long long parsed =
          std::strtoull(value.c_str(), &end, 10);
      if (value.empty() || end != value.c_str() + value.size() ||
          errno == ERANGE || value[0] == '-' || parsed == 0) {
        return Status::InvalidArgument(StrCat(
            "--trace-buffer expects a positive integer, got '", value,
            "'"));
      }
      options.trace_buffer = static_cast<size_t>(parsed);
    } else if (arg == "--threads") {
      PSC_ASSIGN_OR_RETURN(const std::string value, next());
      // Validate strictly: "-1" would wrap to SIZE_MAX and ask the pool
      // for that many workers.
      char* end = nullptr;
      const unsigned long long parsed =
          std::strtoull(value.c_str(), &end, 10);
      constexpr unsigned long long kMaxThreads = 1024;
      if (value.empty() || end != value.c_str() + value.size() ||
          value[0] == '-' || parsed > kMaxThreads) {
        return Status::InvalidArgument(
            StrCat("--threads expects an integer in [0, ", kMaxThreads,
                   "], got '", value, "'"));
      }
      options.threads = static_cast<size_t>(parsed);
    } else if (arg == "--deadline-ms") {
      PSC_ASSIGN_OR_RETURN(const std::string value, next());
      char* end = nullptr;
      errno = 0;
      const long long parsed = std::strtoll(value.c_str(), &end, 10);
      if (value.empty() || end != value.c_str() + value.size() ||
          errno == ERANGE || parsed < 0) {
        return Status::InvalidArgument(StrCat(
            "--deadline-ms expects a non-negative integer, got '", value,
            "'"));
      }
      options.deadline_ms = static_cast<int64_t>(parsed);
    } else if (arg == "--node-budget") {
      PSC_ASSIGN_OR_RETURN(const std::string value, next());
      char* end = nullptr;
      errno = 0;
      const unsigned long long parsed =
          std::strtoull(value.c_str(), &end, 10);
      if (value.empty() || end != value.c_str() + value.size() ||
          errno == ERANGE || value[0] == '-') {
        return Status::InvalidArgument(StrCat(
            "--node-budget expects a non-negative integer, got '", value,
            "'"));
      }
      options.node_budget = static_cast<uint64_t>(parsed);
    } else if (arg == "--apply-delta") {
      PSC_ASSIGN_OR_RETURN(options.apply_delta, next());
    } else if (arg.rfind("--apply-delta=", 0) == 0) {
      options.apply_delta = arg.substr(std::strlen("--apply-delta="));
      if (options.apply_delta.empty()) {
        return Status::InvalidArgument("empty path for --apply-delta");
      }
    } else if (arg == "--no-compiled-eval") {
      options.use_compiled_eval = false;
    } else if (arg == "--trace") {
      options.trace = true;
    } else if (arg == "--quiet") {
      options.quiet = true;
    } else {
      return Status::InvalidArgument(StrCat("unknown flag ", arg));
    }
  }
  return options;
}

/// Small-instance cut-off for the witness cross-check: above this many
/// allowable combinations the rep(𝒯^U) scan is skipped.
constexpr int64_t kMaxCrossCheckCombinations = 4096;

/// Re-derives the witness through the Theorem 4.1 template family: a found
/// witness must be a member of rep(𝒯^U) for some allowable U. Only run on
/// small instances; disagreement indicates a solver bug, not user error.
void CrossCheckWitness(const SourceCollection& collection,
                       const Database& witness) {
  TemplateBuilder builder(&collection);
  if (builder.CountAllowableCombinations() >
      BigInt(kMaxCrossCheckCombinations)) {
    return;
  }
  auto contained = builder.FamilyContains(witness);
  if (!contained.ok()) return;  // e.g. built-ins: the check is best-effort
  std::printf("witness cross-check: %s\n",
              *contained ? "member of the rep(T^U) template family"
                         : "WARNING: not matched by any template");
}

QuerySystem::Options SystemOptions(const CliOptions& options) {
  QuerySystem::Options system_options;
  system_options.threads = options.threads;
  system_options.use_compiled_eval = options.use_compiled_eval;
  system_options.deadline_ms = options.deadline_ms;
  system_options.node_budget = options.node_budget;
  system_options.cancel = InterruptToken();
  system_options.scope = options.scope;
  return system_options;
}

/// Budget for the commands that bypass QuerySystem (certain, audit).
/// Always active: it adopts the interrupt token so ^C unwinds these
/// commands through their graceful-degradation paths too.
limits::Budget CliBudget(const CliOptions& options) {
  limits::BudgetOptions budget_options;
  budget_options.deadline_ms = options.deadline_ms;
  budget_options.node_budget = options.node_budget;
  budget_options.cancel = InterruptToken();
  return limits::Budget(budget_options);
}

int RunCheck(const SourceCollection& collection, const CliOptions& options) {
  auto system = QuerySystem::Create(collection, SystemOptions(options));
  if (!system.ok()) return Fail(system.status());
  auto report = system->CheckConsistency();
  if (!report.ok()) return Fail(report.status());
  std::printf("verdict: %s\n", ConsistencyVerdictToString(report->verdict));
  std::printf("method:  %s\n", report->method.c_str());
  if (!report->unknown_reason.empty()) {
    std::printf("reason:  %s\n", report->unknown_reason.c_str());
  }
  if (report->witness.has_value()) {
    std::printf("witness possible world (%zu facts):\n%s\n",
                report->witness->size(),
                report->witness->ToString().c_str());
    CrossCheckWitness(collection, *report->witness);
  }
  return report->verdict == ConsistencyVerdict::kInconsistent ? 3 : 0;
}

int RunConfidences(const SourceCollection& collection,
                   const CliOptions& options) {
  auto system = QuerySystem::Create(collection, SystemOptions(options));
  if (!system.ok()) return Fail(system.status());
  auto table = system->BaseConfidences(options.domain);
  if (!table.ok()) return Fail(table.status());
  std::printf("|poss(S)| = %s\n", table->world_count.ToString().c_str());
  for (const TupleConfidence& entry : table->entries) {
    std::printf("%-30s %.6f\n", TupleToString(entry.tuple).c_str(),
                entry.confidence);
  }
  return 0;
}

void PrintAnswer(const QueryAnswer& answer) {
  std::printf("method: %s%s  (worlds used: %llu)\n", answer.method.c_str(),
              answer.from_cache ? " [cached]" : "",
              static_cast<unsigned long long>(answer.worlds_used));
  if (answer.truncated) {
    std::printf("TRUNCATED: %s\n", answer.truncation_reason.c_str());
  }
  std::printf("certain answer (%zu tuples):\n", answer.certain.size());
  for (const Tuple& tuple : answer.certain) {
    std::printf("  %s\n", TupleToString(tuple).c_str());
  }
  std::printf("possible answer with confidences (%zu tuples):\n",
              answer.confidences.size());
  for (const auto& [tuple, confidence] : answer.confidences.entries()) {
    std::printf("  %-28s %.6f\n", TupleToString(tuple).c_str(), confidence);
  }
}

int RunAnswer(const SourceCollection& collection, const CliOptions& options) {
  auto query = ParseQuery(options.query);
  if (!query.ok()) return Fail(query.status());
  auto system = QuerySystem::Create(collection, SystemOptions(options));
  if (!system.ok()) return Fail(system.status());
  Result<QueryAnswer> answer = Status::Internal("unset");
  if (options.method == "exact") {
    answer = system->AnswerExact(*query, options.domain);
  } else if (options.method == "compositional") {
    answer = system->AnswerCompositional(*query, options.domain);
  } else if (options.method == "mc") {
    answer = system->AnswerMonteCarlo(*query, options.domain,
                                      options.samples, options.seed);
  } else {
    return Fail(Status::InvalidArgument(
        StrCat("unknown method '", options.method, "'")));
  }
  if (!answer.ok()) return Fail(answer.status());
  PrintAnswer(*answer);
  return 0;
}

/// \name Streaming mode (--apply-delta)
///
/// Runs the command once on the initial collection, then once after every
/// batch of the delta script, through the incremental delta engine so
/// witnesses, indexes and cached answers stay warm across batches.
/// @{

int RunCheckStreaming(const SourceCollection& collection,
                      const CliOptions& options) {
  auto batches = delta::ParseDeltaScriptFile(options.apply_delta);
  if (!batches.ok()) return Fail(batches.status());
  auto system =
      delta::IncrementalSystem::Create(collection, SystemOptions(options));
  if (!system.ok()) return Fail(system.status());
  int exit_code = 0;
  const auto check = [&]() -> int {
    auto report = system->CheckConsistency();
    if (!report.ok()) return Fail(report.status());
    std::printf("verdict: %s  (method %s",
                ConsistencyVerdictToString(report->verdict),
                report->method.c_str());
    if (report->combinations_skipped > 0) {
      std::printf(", %llu combination(s) skipped",
                  static_cast<unsigned long long>(
                      report->combinations_skipped));
    }
    std::printf(")\n");
    if (!report->unknown_reason.empty()) {
      std::printf("reason:  %s\n", report->unknown_reason.c_str());
    }
    if (report->witness.has_value()) {
      std::printf("witness possible world: %zu facts\n",
                  report->witness->size());
    }
    return report->verdict == ConsistencyVerdict::kInconsistent ? 3 : 0;
  };
  std::printf("--- initial collection ---\n");
  int code = check();
  if (code == 1) return 1;  // hard error: stop streaming
  exit_code = std::max(exit_code, code);
  for (size_t i = 0; i < batches->size(); ++i) {
    auto summary = system->ApplyDelta((*batches)[i]);
    if (!summary.ok()) return Fail(summary.status());
    std::printf("--- batch %zu: %s ---\n", i + 1,
                summary->ToString().c_str());
    code = check();
    if (code == 1) return 1;
    exit_code = std::max(exit_code, code);
  }
  return exit_code;
}

int RunAnswerStreaming(const SourceCollection& collection,
                       const CliOptions& options) {
  if (options.method != "exact") {
    return Fail(Status::InvalidArgument(
        "--apply-delta answering supports --method exact only"));
  }
  auto query = ParseQuery(options.query);
  if (!query.ok()) return Fail(query.status());
  auto batches = delta::ParseDeltaScriptFile(options.apply_delta);
  if (!batches.ok()) return Fail(batches.status());
  auto system =
      delta::IncrementalSystem::Create(collection, SystemOptions(options));
  if (!system.ok()) return Fail(system.status());
  const auto answer_once = [&]() -> int {
    // Refresh consistency first: cached answers are only reusable while
    // the collection is known consistent at the current generation.
    auto report = system->CheckConsistency();
    if (!report.ok()) return Fail(report.status());
    if (report->verdict != ConsistencyVerdict::kConsistent) {
      std::printf("collection is %s; no worlds to answer over\n",
                  ConsistencyVerdictToString(report->verdict));
      return 3;
    }
    // Without --domain, track the drifting collection: deltas can mention
    // constants the initial collection did not.
    const std::vector<Value> domain =
        options.domain_given ? options.domain
                             : system->CollectionSnapshot().MentionedConstants();
    auto answer = system->AnswerExact(*query, domain);
    if (!answer.ok()) return Fail(answer.status());
    PrintAnswer(*answer);
    return 0;
  };
  std::printf("--- initial collection ---\n");
  int exit_code = answer_once();
  if (exit_code == 1) return 1;  // hard error: stop streaming
  for (size_t i = 0; i < batches->size(); ++i) {
    auto summary = system->ApplyDelta((*batches)[i]);
    if (!summary.ok()) return Fail(summary.status());
    std::printf("--- batch %zu: %s ---\n", i + 1,
                summary->ToString().c_str());
    const int code = answer_once();
    if (code == 1) return 1;
    exit_code = std::max(exit_code, code);
  }
  return exit_code;
}

/// @}

int RunCertain(const SourceCollection& collection,
               const CliOptions& options) {
  auto query = ParseQuery(options.query);
  if (!query.ok()) return Fail(query.status());
  auto plan = CompileQuery(*query);
  if (!plan.ok()) return Fail(plan.status());
  auto bound = CertainAnswerLowerBound(collection, *plan,
                                       uint64_t{1} << 16, CliBudget(options));
  if (!bound.ok()) return Fail(bound.status());
  std::printf("template-based certain lower bound (%llu combinations%s):\n",
              static_cast<unsigned long long>(bound->combinations),
              bound->truncated ? ", truncated" : "");
  for (const Tuple& tuple : bound->certain) {
    std::printf("  %s\n", TupleToString(tuple).c_str());
  }
  BucketRewriter rewriter(&collection);
  auto rewritings = rewriter.Rewrite(*query);
  auto view_answer = rewriter.AnswerUsingViews(*query);
  if (rewritings.ok() && view_answer.ok()) {
    std::printf("view-based answer (%zu rewritings; certain when the used "
                "sources are fully sound):\n",
                rewritings->size());
    for (const Tuple& tuple : *view_answer) {
      std::printf("  %s\n", TupleToString(tuple).c_str());
    }
  }
  return 0;
}

int RunConsensus(const SourceCollection& collection) {
  auto instance = IdentityInstance::CreateOverExtensions(collection);
  if (!instance.ok()) return Fail(instance.status());
  auto consensus = ComputeSourceConsensus(*instance);
  if (!consensus.ok()) return Fail(consensus.status());
  std::printf("%-12s | %10s | %10s | %10s | %10s | %8s\n", "source",
              "E[sound]", "claimed", "E[compl]", "claimed", "slack");
  for (const SourceConsensus& entry : *consensus) {
    std::printf("%-12s | %10.4f | %10.4f | %10.4f | %10.4f | %+8.4f\n",
                entry.name.c_str(), entry.expected_soundness,
                entry.claimed_soundness, entry.expected_completeness,
                entry.claimed_completeness, entry.soundness_slack);
  }
  return 0;
}

int RunAudit(const SourceCollection& collection, const CliOptions& options) {
  GeneralConsistencyChecker::Options checker_options;
  checker_options.threads = options.threads;
  checker_options.budget = CliBudget(options);
  GeneralConsistencyChecker checker(checker_options);
  auto report = checker.Check(collection);
  if (!report.ok()) return Fail(report.status());
  std::printf("verdict: %s\n", ConsistencyVerdictToString(report->verdict));
  if (report->verdict == ConsistencyVerdict::kConsistent) return 0;

  auto blames = BlameSources(collection, checker);
  if (!blames.ok()) return Fail(blames.status());
  std::printf("\nblame (verdict without each source):\n");
  for (const SourceBlame& blame : *blames) {
    std::printf("  %-12s -> %s\n", blame.source_name.c_str(),
                ConsistencyVerdictToString(blame.verdict_without));
  }

  auto maximal = MaximalConsistentSubcollections(collection, checker);
  if (maximal.ok()) {
    std::printf("\nmaximal consistent sub-collections:\n");
    for (const std::vector<std::string>& names : *maximal) {
      std::printf("  { %s }\n", Join(names, ", ").c_str());
    }
  }

  auto lambda = MaxUniformRelaxation(collection, checker);
  if (lambda.ok()) {
    std::printf("\nmax uniform relaxation factor: %s (= %.4f)\n",
                lambda->ToString().c_str(), lambda->ToDouble());
  }
  return 3;
}

/// One-line summary of the headline solver counters, printed after every
/// solving command unless --quiet. Counters read 0 when PSC_OBS=OFF.
void PrintStatsLine(uint64_t start_us) {
  const double elapsed_ms =
      static_cast<double>(obs::TraceNowMicros() - start_us) / 1000.0;
  const obs::MetricsRegistry& metrics = obs::GlobalMetrics();
  std::printf(
      "stats: nodes=%llu combinations=%llu shapes=%llu tuples=%llu "
      "evals=%llu probes=%llu time_ms=%.1f\n",
      static_cast<unsigned long long>(
          metrics.CounterValue("consistency.nodes_expanded")),
      static_cast<unsigned long long>(
          metrics.CounterValue("tableau.combinations_enumerated")),
      static_cast<unsigned long long>(
          metrics.CounterValue("counting.shapes_visited")),
      static_cast<unsigned long long>(
          metrics.CounterValue("algebra.tuples_produced")),
      static_cast<unsigned long long>(
          metrics.CounterValue("eval.execs.compiled") +
          metrics.CounterValue("eval.execs.legacy")),
      static_cast<unsigned long long>(metrics.CounterValue("eval.probes")),
      elapsed_ms);
}

int Main(int argc, char** argv) {
  InstallInterruptHandler();
  auto options = ParseArgs(argc, argv);
  if (!options.ok()) {
    std::fprintf(stderr, "error: %s\n", options.status().ToString().c_str());
    return Usage();
  }
  if (options->trace || !options->trace_out.empty()) {
    obs::Options obs_options = obs::GetOptions();
    obs_options.trace_enabled = true;
    obs::SetOptions(obs_options);
  }
  if (options->trace_buffer > 0) {
    obs::GlobalTrace().SetCapacity(options->trace_buffer);
  }
  // Applies to every command, including the ones (certain, audit,
  // consensus) that never construct a QuerySystem.
  eval::SetCompiledEvalEnabled(options->use_compiled_eval);
  auto text = ReadFile(options->file);
  if (!text.ok()) return Fail(text.status());
  auto collection = ParseCollection(*text);
  if (!collection.ok()) return Fail(collection.status());
  std::printf("parsed %zu source(s); global schema %s\n", collection->size(),
              collection->schema().ToString().c_str());

  if (!options->domain_given) {
    options->domain = collection->MentionedConstants();
  }

  const std::string& command = options->command;
  // One telemetry scope per solving command: its metric delta, span tree
  // and any limits trip form the per-query section of the run report
  // ("q1" anticipates pscd assigning one ordinal per in-flight request).
  if (command != "print") {
    options->scope = obs::Scope::Create(StrCat("q1:", command));
  }
  const uint64_t start_us = obs::TraceNowMicros();
  int exit_code = -1;
  {
    const obs::ScopeGuard scope_guard(options->scope);
    const bool streaming = !options->apply_delta.empty();
    if (streaming && command != "check" && command != "answer") {
      return Fail(Status::InvalidArgument(
          "--apply-delta supports the check and answer commands only"));
    }
    if (command == "check") {
      exit_code = streaming ? RunCheckStreaming(*collection, *options)
                            : RunCheck(*collection, *options);
    }
    if (command == "print") {
      std::printf("%s\n", collection->ToString().c_str());
      exit_code = 0;
    }
    if (command == "confidences") {
      exit_code = RunConfidences(*collection, *options);
    }
    if (command == "answer") {
      exit_code = streaming ? RunAnswerStreaming(*collection, *options)
                            : RunAnswer(*collection, *options);
    }
    if (command == "certain") exit_code = RunCertain(*collection, *options);
    if (command == "consensus") exit_code = RunConsensus(*collection);
    if (command == "audit") exit_code = RunAudit(*collection, *options);
  }
  if (exit_code < 0) return Usage();

  if (!options->quiet && command != "print") PrintStatsLine(start_us);
  if (options->trace) {
    const std::vector<obs::SpanRecord> spans = obs::GlobalTrace().Snapshot();
    if (spans.empty()) {
      std::printf("trace: no spans recorded\n");
    } else {
      std::printf("trace (%zu spans):\n%s", spans.size(),
                  obs::FormatSpanTree(spans).c_str());
    }
  }
  // Artifact writers run after the command so a failure can no longer
  // mask its verdict (check/audit exit 3 by design): an unwritable path
  // warns and forces a nonzero exit only when the command itself passed.
  int artifact_failures = 0;
  if (!options->metrics_out.empty() || !options->trace_out.empty()) {
    const obs::RunReport report = obs::RunReport::Capture();
    if (!options->metrics_out.empty()) {
      const Status written = report.WriteJsonFile(options->metrics_out);
      if (!written.ok()) {
        obs::LogWarning(StrCat("--metrics-out: ", written.ToString()));
        ++artifact_failures;
      } else if (!options->quiet) {
        std::printf("metrics written to %s\n", options->metrics_out.c_str());
      }
    }
    if (!options->trace_out.empty()) {
      const Status written =
          obs::WriteChromeTraceFile(report, options->trace_out);
      if (!written.ok()) {
        obs::LogWarning(StrCat("--trace-out: ", written.ToString()));
        ++artifact_failures;
      } else if (!options->quiet) {
        std::printf("trace written to %s\n", options->trace_out.c_str());
      }
    }
  }
  if (artifact_failures > 0 && exit_code == 0) exit_code = 1;
  return exit_code;
}

}  // namespace
}  // namespace psc

int main(int argc, char** argv) { return psc::Main(argc, argv); }
