// pscd — the resident query service.
//
// Keeps loaded source collections (and their compiled plans, hash
// indexes, consistency witnesses and delta-aware answer caches) warm in
// one long-lived process, and serves concurrent client sessions over a
// newline-delimited JSON protocol (see psc/serve/protocol.h):
//
//   pscd --unix /tmp/pscd.sock [--load data/example51.psc --name default]
//   pscd --port 7411                       # loopback TCP instead
//   pscd --port 0                          # ephemeral port, printed on stdout
//
// Options:
//   --unix PATH                listen on a Unix-domain socket
//   --port N                   listen on loopback TCP (0 = ephemeral)
//   --load FILE                preload a collection before serving; may be
//                              repeated, each paired with the preceding
//                              --name (default name: "default")
//   --name NAME                collection name for the next --load
//   --threads N                solver threads per request (0 = auto)
//   --dispatchers N            dispatcher threads (default 2)
//   --max-queue N              admission-control queue bound (default 1024)
//   --max-batch N              max answer requests fused per batch (16)
//   --deadline-ceiling-ms N    per-request deadline ceiling (0 = none)
//   --node-budget-ceiling N    per-request node-budget ceiling (0 = none)
//   --plan-cache-capacity N    cap the compiled-plan cache (0 = unbounded)
//   --memo-capacity N          cap the containment memo (0 = unbounded)
//   --per-request-scopes       one obs::Scope per request in the report
//   --no-compiled-eval         legacy interpreter (differential testing)
//   --metrics-out PATH         write the run report as JSON on shutdown
//   --trace-out PATH           write Chrome trace-event JSON on shutdown
//
// Shutdown: SIGINT/SIGTERM (or a client's `shutdown` verb) stops
// admission, cancels in-flight solver work through the engine's drain
// token, drains the queue so every accepted request still gets its
// response, flushes --metrics-out/--trace-out and exits 0.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "psc/obs/chrome_trace.h"
#include "psc/obs/log.h"
#include "psc/obs/report.h"
#include "psc/serve/engine.h"
#include "psc/serve/protocol.h"
#include "psc/serve/socket_server.h"
#include "psc/util/string_util.h"

namespace psc {
namespace {

/// The accept loop's wake-up handle for the signal handler. `Wake()` is
/// one write(2) to a pipe — async-signal-safe.
serve::SocketServer* g_server = nullptr;

void HandleShutdownSignal(int signo) {
  if (g_server != nullptr) g_server->Wake();
  // A second signal kills the process the old-fashioned way.
  std::signal(signo, SIG_DFL);
}

struct DaemonOptions {
  serve::EngineOptions engine;
  serve::SocketServerOptions socket;
  std::vector<std::pair<std::string, std::string>> preloads;  // name, file
  std::string metrics_out;
  std::string trace_out;
};

int Usage() {
  std::fprintf(stderr,
               "usage: pscd (--unix PATH | --port N) [--load FILE] "
               "[--name NAME] [--threads N] [--dispatchers N] "
               "[--max-queue N] [--max-batch N] [--deadline-ceiling-ms N] "
               "[--node-budget-ceiling N] [--plan-cache-capacity N] "
               "[--memo-capacity N] [--per-request-scopes] "
               "[--no-compiled-eval] [--metrics-out PATH] "
               "[--trace-out PATH]\n");
  return 2;
}

Result<DaemonOptions> ParseArgs(int argc, char** argv) {
  DaemonOptions options;
  std::string pending_name = "default";
  bool endpoint_given = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> Result<std::string> {
      if (i + 1 >= argc) {
        return Status::InvalidArgument(StrCat("missing value for ", arg));
      }
      return std::string(argv[++i]);
    };
    const auto next_uint = [&]() -> Result<uint64_t> {
      PSC_ASSIGN_OR_RETURN(const std::string value, next());
      char* end = nullptr;
      const unsigned long long parsed = std::strtoull(value.c_str(), &end, 10);
      if (end == nullptr || *end != '\0') {
        return Status::InvalidArgument(
            StrCat("bad numeric value '", value, "' for ", arg));
      }
      return static_cast<uint64_t>(parsed);
    };
    if (arg == "--unix") {
      PSC_ASSIGN_OR_RETURN(options.socket.unix_path, next());
      endpoint_given = true;
    } else if (arg == "--port") {
      PSC_ASSIGN_OR_RETURN(const uint64_t port, next_uint());
      options.socket.tcp_port = static_cast<int>(port);
      options.socket.ephemeral_tcp = port == 0;
      endpoint_given = true;
    } else if (arg == "--load") {
      PSC_ASSIGN_OR_RETURN(const std::string file, next());
      options.preloads.emplace_back(pending_name, file);
      pending_name = "default";
    } else if (arg == "--name") {
      PSC_ASSIGN_OR_RETURN(pending_name, next());
    } else if (arg == "--threads") {
      PSC_ASSIGN_OR_RETURN(const uint64_t n, next_uint());
      options.engine.solver_threads = static_cast<size_t>(n);
    } else if (arg == "--dispatchers") {
      PSC_ASSIGN_OR_RETURN(const uint64_t n, next_uint());
      if (n == 0) {
        return Status::InvalidArgument("--dispatchers must be at least 1");
      }
      options.engine.dispatch_threads = static_cast<size_t>(n);
    } else if (arg == "--max-queue") {
      PSC_ASSIGN_OR_RETURN(const uint64_t n, next_uint());
      options.engine.max_queue = static_cast<size_t>(n);
    } else if (arg == "--max-batch") {
      PSC_ASSIGN_OR_RETURN(const uint64_t n, next_uint());
      options.engine.max_batch = static_cast<size_t>(n);
    } else if (arg == "--deadline-ceiling-ms") {
      PSC_ASSIGN_OR_RETURN(const uint64_t n, next_uint());
      options.engine.deadline_ceiling_ms = static_cast<int64_t>(n);
    } else if (arg == "--node-budget-ceiling") {
      PSC_ASSIGN_OR_RETURN(options.engine.node_budget_ceiling, next_uint());
    } else if (arg == "--plan-cache-capacity") {
      PSC_ASSIGN_OR_RETURN(const uint64_t n, next_uint());
      options.engine.plan_cache_capacity = static_cast<size_t>(n);
    } else if (arg == "--memo-capacity") {
      PSC_ASSIGN_OR_RETURN(const uint64_t n, next_uint());
      options.engine.containment_cache_capacity = static_cast<size_t>(n);
    } else if (arg == "--per-request-scopes") {
      options.engine.per_request_scopes = true;
    } else if (arg == "--no-compiled-eval") {
      options.engine.use_compiled_eval = false;
    } else if (arg == "--metrics-out") {
      PSC_ASSIGN_OR_RETURN(options.metrics_out, next());
    } else if (arg == "--trace-out") {
      PSC_ASSIGN_OR_RETURN(options.trace_out, next());
    } else {
      return Status::InvalidArgument(StrCat("unknown argument ", arg));
    }
  }
  if (!endpoint_given) {
    return Status::InvalidArgument("one of --unix or --port is required");
  }
  if (!options.socket.unix_path.empty() &&
      (options.socket.tcp_port > 0 || options.socket.ephemeral_tcp)) {
    return Status::InvalidArgument("--unix and --port are mutually exclusive");
  }
  options.socket.max_line_bytes = options.engine.parse_limits.max_line_bytes;
  return options;
}

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream input(path);
  if (!input) {
    return Status::NotFound(StrCat("cannot open '", path, "'"));
  }
  std::ostringstream buffer;
  buffer << input.rdbuf();
  return buffer.str();
}

Status Preload(serve::Engine& engine, const std::string& name,
               const std::string& file) {
  PSC_ASSIGN_OR_RETURN(const std::string text, ReadFile(file));
  serve::JsonObjectWriter request;
  request.String("verb", "load");
  request.String("collection", name);
  request.String("text", text);
  const std::string response = engine.Call(0, request.Finish());
  if (response.find("\"ok\":true") == std::string::npos) {
    return Status::InvalidArgument(
        StrCat("preload of '", file, "' failed: ", response));
  }
  std::printf("loaded %s as '%s'\n", file.c_str(), name.c_str());
  return Status::OK();
}

int WriteArtifacts(const DaemonOptions& options) {
  if (options.metrics_out.empty() && options.trace_out.empty()) return 0;
  int failures = 0;
  const obs::RunReport report = obs::RunReport::Capture();
  if (!options.metrics_out.empty()) {
    const Status written = report.WriteJsonFile(options.metrics_out);
    if (!written.ok()) {
      obs::LogWarning(StrCat("--metrics-out: ", written.ToString()));
      ++failures;
    } else {
      std::printf("metrics written to %s\n", options.metrics_out.c_str());
    }
  }
  if (!options.trace_out.empty()) {
    const Status written = obs::WriteChromeTraceFile(report, options.trace_out);
    if (!written.ok()) {
      obs::LogWarning(StrCat("--trace-out: ", written.ToString()));
      ++failures;
    } else {
      std::printf("trace written to %s\n", options.trace_out.c_str());
    }
  }
  return failures;
}

int Main(int argc, char** argv) {
  auto options = ParseArgs(argc, argv);
  if (!options.ok()) {
    std::fprintf(stderr, "error: %s\n", options.status().ToString().c_str());
    return Usage();
  }

  serve::Engine engine(options->engine);
  for (const auto& [name, file] : options->preloads) {
    const Status loaded = Preload(engine, name, file);
    if (!loaded.ok()) {
      std::fprintf(stderr, "error: %s\n", loaded.ToString().c_str());
      return 1;
    }
  }

  serve::SocketServer server(&engine, options->socket);
  const Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "error: %s\n", started.ToString().c_str());
    return 1;
  }
  g_server = &server;
  std::signal(SIGINT, HandleShutdownSignal);
  std::signal(SIGTERM, HandleShutdownSignal);
  std::signal(SIGPIPE, SIG_IGN);

  // Readiness line for scripts: parse the endpoint from stdout.
  std::printf("pscd listening on %s\n", server.endpoint().c_str());
  std::fflush(stdout);

  server.Serve();

  // Stop admission, revoke in-flight solver work, answer everything that
  // was already accepted, then flush artifacts. Exit 0 on a clean drain.
  engine.BeginShutdown();
  engine.Drain();
  g_server = nullptr;
  std::printf("pscd draining complete\n");
  const int artifact_failures = WriteArtifacts(*options);
  return artifact_failures > 0 ? 1 : 0;
}

}  // namespace
}  // namespace psc

int main(int argc, char** argv) { return psc::Main(argc, argv); }
