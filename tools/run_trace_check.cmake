# Test driver for the trace-schema ctest: answers a query at 4 threads
# with --trace-out and validates the emitted Chrome trace JSON with
# check_trace_schema.py. Invoked as
#   cmake -DPSC_CLI=... -DPYTHON=... -DCHECKER=... -DINPUT=...
#         -DOUTPUT=... [-DSTRICT=ON] -P run_trace_check.cmake
#
# STRICT adds --require-spans/--expect-single-root; leave it off for
# PSC_OBS=OFF builds, where spans compile out and the trace is empty
# but must still be structurally valid JSON.

execute_process(
  COMMAND "${PSC_CLI}" answer "${INPUT}" "Ans(x) <- R(x)"
          --method mc --samples 4000 --threads 4
          "--trace-out=${OUTPUT}" --quiet
  RESULT_VARIABLE cli_result)
if(NOT cli_result EQUAL 0)
  message(FATAL_ERROR "psc answer failed with status ${cli_result}")
endif()

set(checker_args "${OUTPUT}")
if(STRICT)
  list(PREPEND checker_args --require-spans 1 --expect-single-root)
endif()
execute_process(
  COMMAND "${PYTHON}" "${CHECKER}" ${checker_args}
  RESULT_VARIABLE checker_result)
if(NOT checker_result EQUAL 0)
  message(FATAL_ERROR
      "check_trace_schema.py rejected ${OUTPUT} (status ${checker_result})")
endif()
