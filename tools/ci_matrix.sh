#!/usr/bin/env bash
# Build-and-test matrix over the observability configurations:
#   PSC_OBS=ON  (default; instrumentation compiled in)
#   PSC_OBS=OFF (PSC_OBS_* macros compile to nothing)
# Both configurations must build warning-free (-Werror) and pass ctest.
#
# Usage: tools/ci_matrix.sh [build-root]   (default: build-matrix)

set -euo pipefail

cd "$(dirname "$0")/.."
build_root="${1:-build-matrix}"
jobs="$(nproc 2>/dev/null || echo 2)"

for obs in ON OFF; do
  build_dir="${build_root}/obs-${obs}"
  echo "=== PSC_OBS=${obs} -> ${build_dir} ==="
  cmake -B "${build_dir}" -S . -DPSC_OBS="${obs}" >/dev/null
  cmake --build "${build_dir}" -j "${jobs}"
  (cd "${build_dir}" && ctest --output-on-failure -j "${jobs}")
done

echo "ci matrix passed: PSC_OBS=ON and PSC_OBS=OFF both green"
