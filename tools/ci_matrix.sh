#!/usr/bin/env bash
# Build-and-test matrix over the observability and sanitizer
# configurations:
#   PSC_OBS=ON  (default; instrumentation compiled in)
#   PSC_OBS=OFF (PSC_OBS_* macros compile to nothing)
#   PSC_SANITIZE=thread (ThreadSanitizer over the concurrency-heavy tests)
#   PSC_SANITIZE=address,undefined (ASan+UBSan over the overflow-prone
#     parsing/arithmetic tests and the limits machinery)
#   Debug (lock-rank deadlock detection on over the tsan-labelled suites)
#   clang++ -Wthread-safety (static lock verification; skipped w/o clang)
#   clang-tidy (.clang-tidy profile; skipped when not installed)
# plus tools/psc_lint.py up front (raw primitives, clocks, metric
# prefixes, detached threads).
# All configurations must build warning-free (-Werror) and pass their
# tests. Sanitizer test selection is label-driven (`ctest -L tsan` /
# `-L asan`; labels declared in tests/CMakeLists.txt). The matrix
# finishes with a --threads 1 vs --threads 4 CLI
# output-equivalence smoke check (the parallel runtime's determinism
# contract made executable), a --deadline-ms smoke (a search that
# would run for minutes must exit cleanly within seconds, reporting
# limits.deadline_hits and a per-query "deadline" trip in its metrics)
# and a query-scoped telemetry smoke (--trace-out at --threads 4 must
# produce a Chrome trace with one connected span tree per query).
#
# Usage: tools/ci_matrix.sh [build-root]   (default: build-matrix)

set -euo pipefail

cd "$(dirname "$0")/.."
build_root="${1:-build-matrix}"
jobs="$(nproc 2>/dev/null || echo 2)"

# Project-invariant lint runs first: it needs no build and fails fast on
# a raw std::mutex, a stray sleep/clock in solver code, an unregistered
# metric prefix or a detached thread (see tools/psc_lint.py --help).
echo "=== psc_lint ==="
python3 tools/psc_lint.py --self-test
python3 tools/psc_lint.py

for obs in ON OFF; do
  build_dir="${build_root}/obs-${obs}"
  echo "=== PSC_OBS=${obs} -> ${build_dir} ==="
  cmake -B "${build_dir}" -S . -DPSC_OBS="${obs}" >/dev/null
  cmake --build "${build_dir}" -j "${jobs}"
  (cd "${build_dir}" && ctest --output-on-failure -j "${jobs}")
done

# ThreadSanitizer pass over the suites where threads actually run
# concurrently (a full-suite TSan run is prohibitively slow). Suite
# selection lives with the suites themselves: tests/CMakeLists.txt
# labels them `tsan` (exec pool/facade, eval caches, rewriting caches,
# the delta engine's readers-writer path, the serving engine, and
# psc::sync itself), so adding a suite there picks it up here with no
# regex to keep in sync.
tsan_dir="${build_root}/tsan"
echo "=== PSC_SANITIZE=thread -> ${tsan_dir} ==="
cmake -B "${tsan_dir}" -S . -DPSC_SANITIZE=thread >/dev/null
cmake --build "${tsan_dir}" -j "${jobs}"
(cd "${tsan_dir}" && ctest --output-on-failure -j "${jobs}" -L tsan)

# ASan+UBSan pass over the suites where integer overflow and lifetime
# bugs have actually bitten: arithmetic, the parsers, the budget/limits
# machinery, the counting enumerators — labelled `asan` in
# tests/CMakeLists.txt.
asan_dir="${build_root}/asan-ubsan"
echo "=== PSC_SANITIZE=address,undefined -> ${asan_dir} ==="
cmake -B "${asan_dir}" -S . -DPSC_SANITIZE=address,undefined >/dev/null
cmake --build "${asan_dir}" -j "${jobs}"
(cd "${asan_dir}" && ctest --output-on-failure -j "${jobs}" -L asan)

# Debug build: rank checking defaults ON there (see
# src/psc/sync/mutex.cc RankCheckingDefault), so running the
# concurrency-labelled suites under it exercises the lock-rank deadlock
# detector against every real nesting in the tree — any inversion
# aborts the test binary. The sync suite's death tests additionally
# prove the detector itself fires.
debug_dir="${build_root}/debug-rank"
echo "=== CMAKE_BUILD_TYPE=Debug (lock-rank checks on) -> ${debug_dir} ==="
cmake -B "${debug_dir}" -S . -DCMAKE_BUILD_TYPE=Debug >/dev/null
cmake --build "${debug_dir}" -j "${jobs}"
(cd "${debug_dir}" && ctest --output-on-failure -j "${jobs}" -L tsan)

# Clang thread-safety build: the PSC_GUARDED_BY/PSC_REQUIRES contracts
# are statically verified by Clang only (-Wthread-safety is added by the
# top-level CMakeLists for Clang, and PSC_WERROR promotes violations to
# build breaks). Also runs the negative-compilation harness, which
# proves broken snippets FAIL. Skips when no clang++ is installed.
if command -v clang++ >/dev/null 2>&1; then
  clang_dir="${build_root}/clang-thread-safety"
  echo "=== clang++ -Wthread-safety -Werror -> ${clang_dir} ==="
  cmake -B "${clang_dir}" -S . -DCMAKE_CXX_COMPILER=clang++ >/dev/null
  cmake --build "${clang_dir}" -j "${jobs}"
  (cd "${clang_dir}" && ctest --output-on-failure -R sync_annotation_check)
else
  echo "=== SKIP clang thread-safety build: no clang++ on PATH ==="
fi

# clang-tidy (.clang-tidy at the repo root: bugprone/concurrency/
# performance families) over every src/ translation unit in the exported
# compilation database. Skips when clang-tidy is not installed.
if command -v clang-tidy >/dev/null 2>&1; then
  echo "=== clang-tidy over src/ ==="
  tidy_db="${build_root}/obs-ON"
  mapfile -t tidy_files < <(python3 - "${tidy_db}/compile_commands.json" <<'PY'
import json, sys
for entry in json.load(open(sys.argv[1])):
    path = entry["file"]
    if "/src/" in path and not path.endswith(".S"):
        print(path)
PY
)
  clang-tidy -p "${tidy_db}" --quiet "${tidy_files[@]}"
else
  echo "=== SKIP clang-tidy: not installed ==="
fi

# Determinism smoke: the CLI must print byte-identical reports at
# --threads 1 and --threads 4. --quiet suppresses the wall-clock stats
# line, which is legitimately run-dependent. (Monte-Carlo answering is
# deliberately excluded: its single-threaded path keeps the historical
# RNG stream, which differs from the counter-based multi-threaded one.)
smoke_build="${build_root}/obs-ON"
smoke_input="$(mktemp)"
trap 'rm -f "${smoke_input}"' EXIT
cat > "${smoke_input}" <<'EOF'
source P {
  view: V(x) <- R2(x, y)
  completeness: 1
  soundness: 0.5
  facts: V("a"), V("b")
}
EOF
echo "=== --threads equivalence smoke ==="
run_smoke() {
  local label="$1"
  shift
  local one four
  # `|| true`: audit/check exit 3 on inconsistent inputs by design.
  one="$("$@" --quiet --threads 1)" || true
  four="$("$@" --quiet --threads 4)" || true
  if [[ "${one}" != "${four}" ]]; then
    echo "FAIL: ${label} output differs between --threads 1 and 4" >&2
    diff <(echo "${one}") <(echo "${four}") >&2 || true
    exit 1
  fi
  echo "${label}: --threads 1 == --threads 4"
}
run_smoke "psc check (projection views)" \
  "${smoke_build}/tools/psc" check "${smoke_input}"
run_smoke "psc confidences (example 5.1)" \
  "${smoke_build}/tools/psc" confidences data/example51.psc
run_smoke "psc audit (conflicted)" \
  "${smoke_build}/tools/psc" audit data/conflicted.psc

# Evaluation-engine smoke: the compiled slot-based join plans (the
# default) and the legacy interpreter (--no-compiled-eval) must print
# byte-identical reports — the differential tests made end-to-end.
echo "=== compiled vs legacy evaluation smoke ==="
run_engine_smoke() {
  local label="$1"
  shift
  local compiled legacy
  compiled="$("$@" --quiet)" || true
  legacy="$("$@" --quiet --no-compiled-eval)" || true
  if [[ "${compiled}" != "${legacy}" ]]; then
    echo "FAIL: ${label} output differs between compiled and legacy eval" >&2
    diff <(echo "${compiled}") <(echo "${legacy}") >&2 || true
    exit 1
  fi
  echo "${label}: compiled == --no-compiled-eval"
}
run_engine_smoke "psc check (projection views)" \
  "${smoke_build}/tools/psc" check "${smoke_input}"
run_engine_smoke "psc confidences (example 5.1)" \
  "${smoke_build}/tools/psc" confidences data/example51.psc
run_engine_smoke "psc answer (example 5.1)" \
  "${smoke_build}/tools/psc" answer data/example51.psc "Ans(x) <- R(x)"
run_engine_smoke "psc audit (conflicted)" \
  "${smoke_build}/tools/psc" audit data/conflicted.psc

# Query-evaluation bench smoke: the sweep cross-checks every compiled
# result against the legacy interpreter (non-zero exit on mismatch) and
# its metrics record must carry the eval.* counters.
echo "=== bench_query_eval smoke ==="
bench_metrics="$(mktemp)"
trap 'rm -f "${smoke_input}" "${bench_metrics}"' EXIT
PSC_BENCH_METRICS_OUT="${bench_metrics}" \
  "${smoke_build}/bench/bench_query_eval" --smoke
python3 tools/check_metrics_schema.py \
  --require-counter eval.probes \
  --require-counter eval.plans_compiled \
  "${bench_metrics}"

# Incremental-engine bench smoke: the streaming-update sweep cross-checks
# every patched-index probe and every cached/revalidated verdict against
# the full-recompute baseline (non-zero exit on mismatch), and its
# metrics must show the whole delta machinery firing: batch application,
# in-place index patches, the churn-threshold rebuild fallback and
# dirty-scoped consistency skips.
echo "=== bench_incremental smoke ==="
delta_metrics="$(mktemp)"
trap 'rm -f "${smoke_input}" "${bench_metrics}" "${delta_metrics}"' EXIT
PSC_BENCH_METRICS_OUT="${delta_metrics}" \
  "${smoke_build}/bench/bench_incremental" --smoke
python3 tools/check_metrics_schema.py \
  --require-counter delta.ops_applied \
  --require-counter delta.index.incremental_updates \
  --require-counter delta.index.rebuilds \
  --require-counter delta.consistency.combinations_skipped \
  --require-counter delta.consistency.revalidations \
  "${delta_metrics}"

# Serving bench smoke: the warm-vs-cold sweep cross-checks every warm
# response byte-for-byte against a cold engine (non-zero exit on
# mismatch), and its metrics must show the serving machinery firing:
# per-verb request counters and cross-session batch dedup.
echo "=== bench_serving smoke ==="
serving_metrics="$(mktemp)"
trap 'rm -f "${smoke_input}" "${bench_metrics}" "${delta_metrics}" "${serving_metrics}"' EXIT
PSC_BENCH_METRICS_OUT="${serving_metrics}" \
  "${smoke_build}/bench/bench_serving" --smoke
python3 tools/check_metrics_schema.py \
  --require-counter serve.requests.answer \
  --require-counter serve.requests.apply_delta \
  --require-counter serve.batch.dedup_hits \
  "${serving_metrics}"

# Resident-service smoke: start pscd on a Unix socket, race a streaming
# answer client against a delta-toggling client (an even toggle count
# restores the base state), then require the final base-state answer to
# match the one-shot CLI digit-for-digit and the daemon to drain and
# exit 0 on the shutdown verb.
echo "=== pscd end-to-end serving smoke ==="
serve_dir="$(mktemp -d)"
trap 'rm -f "${smoke_input}" "${bench_metrics}" "${delta_metrics}" "${serving_metrics}"; rm -rf "${serve_dir}"' EXIT
serve_sock="${serve_dir}/pscd.sock"
"${smoke_build}/tools/pscd" --unix "${serve_sock}" \
  --load data/example51.psc > "${serve_dir}/pscd.log" 2>&1 &
pscd_pid=$!
for _ in $(seq 1 100); do
  [[ -S "${serve_sock}" ]] && break
  sleep 0.1
done
[[ -S "${serve_sock}" ]] || { cat "${serve_dir}/pscd.log" >&2; exit 1; }
for _ in $(seq 1 40); do
  printf '{"verb":"answer","query":"Ans(x) <- R(x)"}\n'
done > "${serve_dir}/answers.jsonl"
for _ in $(seq 1 10); do
  printf '{"verb":"apply-delta","script":"+ S1(\\"c\\")"}\n'
  printf '{"verb":"apply-delta","script":"- S1(\\"c\\")"}\n'
done > "${serve_dir}/deltas.jsonl"
"${smoke_build}/tools/pscd_client" --unix "${serve_sock}" --check-ok \
  --script "${serve_dir}/answers.jsonl" > "${serve_dir}/answers.out" &
answer_client=$!
"${smoke_build}/tools/pscd_client" --unix "${serve_sock}" --check-ok \
  --script "${serve_dir}/deltas.jsonl" > "${serve_dir}/deltas.out" &
delta_client=$!
wait "${answer_client}"
wait "${delta_client}"
printf '{"verb":"answer","query":"Ans(x) <- R(x)"}\n' | \
  "${smoke_build}/tools/pscd_client" --unix "${serve_sock}" --check-ok \
  > "${serve_dir}/final.out"
"${smoke_build}/tools/psc" answer data/example51.psc "Ans(x) <- R(x)" \
  --quiet > "${serve_dir}/cli.out"
python3 - "${serve_dir}/final.out" "${serve_dir}/cli.out" <<'PY'
import json, sys
response = json.loads(open(sys.argv[1]).read().strip())
assert response["ok"], response
served = {t: "%.6f" % c for t, c in response["confidences"]}
cli = {}
in_confidences = False
for line in open(sys.argv[2]):
    if line.startswith("possible answer"):
        in_confidences = True
        continue
    if in_confidences and line.startswith("  "):
        tuple_text, confidence = line.rsplit(None, 1)
        cli[tuple_text.strip()] = confidence
if served != cli:
    sys.exit("served confidences %r != one-shot CLI %r" % (served, cli))
print("pscd answers match the one-shot CLI digit-for-digit")
PY
printf '{"verb":"shutdown"}\n' | \
  "${smoke_build}/tools/pscd_client" --unix "${serve_sock}" --check-ok \
  > /dev/null
wait "${pscd_pid}"
grep -q "draining complete" "${serve_dir}/pscd.log" || {
  cat "${serve_dir}/pscd.log" >&2
  exit 1
}
echo "pscd served racing clients and drained cleanly (exit 0)"

# Delta streaming smoke: `psc check --apply-delta` replays a script of
# extension mutations, re-deciding consistency after every batch through
# the incremental engine; like every other CLI path it must be
# thread-count independent.
echo "=== --apply-delta streaming smoke ==="
delta_script="$(mktemp)"
trap 'rm -f "${smoke_input}" "${bench_metrics}" "${delta_metrics}" "${serving_metrics}" "${delta_script}"; rm -rf "${serve_dir}"' EXIT
cat > "${delta_script}" <<'EOF'
+ S1("c")
--
- S2("b")
EOF
run_smoke "psc check --apply-delta (example 5.1)" \
  "${smoke_build}/tools/psc" check data/example51.psc \
  --apply-delta "${delta_script}"

# Deadline smoke: a canonical-freeze search over ~2^33 allowable
# combinations would run for minutes unbounded; with --deadline-ms 100
# the CLI must exit cleanly (verdict unknown, exit 0) within the outer
# 2 s timeout and its metrics must record the deadline trip.
echo "=== --deadline-ms graceful-degradation smoke ==="
deadline_input="$(mktemp)"
deadline_metrics="$(mktemp)"
trap 'rm -f "${smoke_input}" "${bench_metrics}" "${delta_metrics}" "${serving_metrics}" "${deadline_input}" "${deadline_metrics}"; rm -rf "${serve_dir}"' EXIT
{
  printf 'source Blocker {\n  view: V0(x) <- R(x), M(x)\n'
  printf '  completeness: 1\n  soundness: 0\n}\n'
  for s in 1 2 3; do
    printf 'source Wide%s {\n  view: V%s(x) <- R(x), M(x)\n' "$s" "$s"
    printf '  completeness: 0\n  soundness: 1/2\n  facts: '
    for i in $(seq 1 12); do
      [[ $i -gt 1 ]] && printf ', '
      printf '(%s)' "$(( (s - 1) * 12 + i ))"
    done
    printf '\n}\n'
  done
} > "${deadline_input}"
timeout 2 "${smoke_build}/tools/psc" check "${deadline_input}" \
  --deadline-ms 100 --quiet --metrics-out "${deadline_metrics}"
python3 tools/check_metrics_schema.py \
  --require-counter limits.deadline_hits \
  --require-trip deadline \
  "${deadline_metrics}"

# Telemetry smoke: a 4-thread Monte-Carlo answer with --trace-out must
# emit a Chrome trace whose spans form one connected tree per query
# (cross-thread propagation made executable), and its run report must
# carry the schema-v2 per-query section.
echo "=== query-scoped telemetry smoke ==="
telemetry_trace="$(mktemp)"
telemetry_metrics="$(mktemp)"
trap 'rm -f "${smoke_input}" "${bench_metrics}" "${delta_metrics}" "${serving_metrics}" "${deadline_input}" "${deadline_metrics}" "${telemetry_trace}" "${telemetry_metrics}"; rm -rf "${serve_dir}"' EXIT
"${smoke_build}/tools/psc" answer data/example51.psc "Ans(x) <- R(x)" \
  --method mc --samples 20000 --threads 4 --quiet \
  --trace-out "${telemetry_trace}" --metrics-out "${telemetry_metrics}"
python3 tools/check_trace_schema.py \
  --require-spans 2 --expect-single-root "${telemetry_trace}"
python3 tools/check_metrics_schema.py \
  --require-counter counting.sampler_draws \
  "${telemetry_metrics}"
python3 tools/psc_trace_summary.py --k 5 "${telemetry_trace}"

echo "ci matrix passed: lint, PSC_OBS on/off, TSan, ASan+UBSan, Debug lock-rank checks, clang stages (or skipped), --threads/eval-engine equivalence, deadline degradation, query-scoped telemetry, incremental-delta and resident-serving smokes green"
