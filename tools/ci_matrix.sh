#!/usr/bin/env bash
# Build-and-test matrix over the observability and sanitizer
# configurations:
#   PSC_OBS=ON  (default; instrumentation compiled in)
#   PSC_OBS=OFF (PSC_OBS_* macros compile to nothing)
#   PSC_SANITIZE=thread (ThreadSanitizer over the concurrency-heavy tests)
# All configurations must build warning-free (-Werror) and pass their
# tests. The matrix finishes with a --threads 1 vs --threads 4 CLI
# output-equivalence smoke check (the parallel runtime's determinism
# contract made executable).
#
# Usage: tools/ci_matrix.sh [build-root]   (default: build-matrix)

set -euo pipefail

cd "$(dirname "$0")/.."
build_root="${1:-build-matrix}"
jobs="$(nproc 2>/dev/null || echo 2)"

for obs in ON OFF; do
  build_dir="${build_root}/obs-${obs}"
  echo "=== PSC_OBS=${obs} -> ${build_dir} ==="
  cmake -B "${build_dir}" -S . -DPSC_OBS="${obs}" >/dev/null
  cmake --build "${build_dir}" -j "${jobs}"
  (cd "${build_dir}" && ctest --output-on-failure -j "${jobs}")
done

# ThreadSanitizer pass over the subsystems that exercise the parallel
# runtime: the exec pool/facade tests, the parallel consistency search,
# the sharded counters and the Monte-Carlo block sampler. A full-suite
# TSan run is prohibitively slow; these tests are where threads actually
# run concurrently.
tsan_dir="${build_root}/tsan"
echo "=== PSC_SANITIZE=thread -> ${tsan_dir} ==="
cmake -B "${tsan_dir}" -S . -DPSC_SANITIZE=thread >/dev/null
cmake --build "${tsan_dir}" -j "${jobs}"
(cd "${tsan_dir}" && ctest --output-on-failure -j "${jobs}" \
  -R 'ThreadPool|ParallelFor|ParallelReduce|Determinism|MemoCache|ContainmentCache|EvalDifferential')

# Determinism smoke: the CLI must print byte-identical reports at
# --threads 1 and --threads 4. --quiet suppresses the wall-clock stats
# line, which is legitimately run-dependent. (Monte-Carlo answering is
# deliberately excluded: its single-threaded path keeps the historical
# RNG stream, which differs from the counter-based multi-threaded one.)
smoke_build="${build_root}/obs-ON"
smoke_input="$(mktemp)"
trap 'rm -f "${smoke_input}"' EXIT
cat > "${smoke_input}" <<'EOF'
source P {
  view: V(x) <- R2(x, y)
  completeness: 1
  soundness: 0.5
  facts: V("a"), V("b")
}
EOF
echo "=== --threads equivalence smoke ==="
run_smoke() {
  local label="$1"
  shift
  local one four
  # `|| true`: audit/check exit 3 on inconsistent inputs by design.
  one="$("$@" --quiet --threads 1)" || true
  four="$("$@" --quiet --threads 4)" || true
  if [[ "${one}" != "${four}" ]]; then
    echo "FAIL: ${label} output differs between --threads 1 and 4" >&2
    diff <(echo "${one}") <(echo "${four}") >&2 || true
    exit 1
  fi
  echo "${label}: --threads 1 == --threads 4"
}
run_smoke "psc check (projection views)" \
  "${smoke_build}/tools/psc" check "${smoke_input}"
run_smoke "psc confidences (example 5.1)" \
  "${smoke_build}/tools/psc" confidences data/example51.psc
run_smoke "psc audit (conflicted)" \
  "${smoke_build}/tools/psc" audit data/conflicted.psc

# Evaluation-engine smoke: the compiled slot-based join plans (the
# default) and the legacy interpreter (--no-compiled-eval) must print
# byte-identical reports — the differential tests made end-to-end.
echo "=== compiled vs legacy evaluation smoke ==="
run_engine_smoke() {
  local label="$1"
  shift
  local compiled legacy
  compiled="$("$@" --quiet)" || true
  legacy="$("$@" --quiet --no-compiled-eval)" || true
  if [[ "${compiled}" != "${legacy}" ]]; then
    echo "FAIL: ${label} output differs between compiled and legacy eval" >&2
    diff <(echo "${compiled}") <(echo "${legacy}") >&2 || true
    exit 1
  fi
  echo "${label}: compiled == --no-compiled-eval"
}
run_engine_smoke "psc check (projection views)" \
  "${smoke_build}/tools/psc" check "${smoke_input}"
run_engine_smoke "psc confidences (example 5.1)" \
  "${smoke_build}/tools/psc" confidences data/example51.psc
run_engine_smoke "psc answer (example 5.1)" \
  "${smoke_build}/tools/psc" answer data/example51.psc "Ans(x) <- R(x)"
run_engine_smoke "psc audit (conflicted)" \
  "${smoke_build}/tools/psc" audit data/conflicted.psc

# Query-evaluation bench smoke: the sweep cross-checks every compiled
# result against the legacy interpreter (non-zero exit on mismatch) and
# its metrics record must carry the eval.* counters.
echo "=== bench_query_eval smoke ==="
bench_metrics="$(mktemp)"
trap 'rm -f "${smoke_input}" "${bench_metrics}"' EXIT
PSC_BENCH_METRICS_OUT="${bench_metrics}" \
  "${smoke_build}/bench/bench_query_eval" --smoke
python3 tools/check_metrics_schema.py \
  --require-counter eval.probes \
  --require-counter eval.plans_compiled \
  "${bench_metrics}"

echo "ci matrix passed: PSC_OBS on/off, TSan, --threads and eval-engine equivalence green"
