# Test driver for the metrics-schema ctest: runs the CLI with
# --metrics-out and validates the emitted JSON with
# check_metrics_schema.py. Invoked as
#   cmake -DPSC_CLI=... -DPYTHON=... -DCHECKER=... -DINPUT=...
#         -DOUTPUT=... [-DREQUIRED_COUNTERS=a;b;c] -P run_metrics_check.cmake

execute_process(
  COMMAND "${PSC_CLI}" check "${INPUT}" "--metrics-out=${OUTPUT}" --quiet
  RESULT_VARIABLE cli_result)
if(NOT cli_result EQUAL 0)
  message(FATAL_ERROR "psc check failed with status ${cli_result}")
endif()

set(checker_args "${OUTPUT}")
foreach(counter IN LISTS REQUIRED_COUNTERS)
  list(PREPEND checker_args --require-counter "${counter}")
endforeach()
execute_process(
  COMMAND "${PYTHON}" "${CHECKER}" ${checker_args}
  RESULT_VARIABLE checker_result)
if(NOT checker_result EQUAL 0)
  message(FATAL_ERROR
      "check_metrics_schema.py rejected ${OUTPUT} (status ${checker_result})")
endif()
