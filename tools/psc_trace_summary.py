#!/usr/bin/env python3
"""Summarise a psc Chrome trace: top-k span names by total self-time.

Self-time of a span is its duration minus the summed durations of its
direct children (resolved through args.parent), so inclusive parents
like query.answer_monte_carlo don't drown out the shards doing the
actual work. Aggregation is by span name across all threads and scopes.

Usage:
  psc_trace_summary.py trace.json
  psc_trace_summary.py --k 20 trace.json
  psc ... --trace-out=/dev/stdout --quiet | psc_trace_summary.py -
"""

import argparse
import json
import sys


def summarise(document):
    """Returns rows of (name, count, total_us, self_us) sorted by self_us."""
    events = [e for e in document.get("traceEvents", [])
              if e.get("ph") == "X"]
    children_dur = {}
    for event in events:
        parent = int(event["args"]["parent"])
        if parent >= 0:
            children_dur[parent] = children_dur.get(parent, 0.0) \
                + float(event["dur"])
    by_name = {}
    for event in events:
        span_id = int(event["args"]["id"])
        dur = float(event["dur"])
        # Clamp: child micros are rounded independently of the parent's,
        # so the sum can exceed the parent's duration by a few ticks.
        self_us = max(0.0, dur - children_dur.get(span_id, 0.0))
        count, total, self_total = by_name.get(event["name"], (0, 0.0, 0.0))
        by_name[event["name"]] = (count + 1, total + dur,
                                  self_total + self_us)
    rows = [(name, count, total, self_total)
            for name, (count, total, self_total) in by_name.items()]
    rows.sort(key=lambda row: (-row[3], row[0]))
    return rows


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("file", metavar="FILE",
                        help="Chrome trace JSON ('-' = stdin)")
    parser.add_argument("--k", type=int, default=10, metavar="N",
                        help="number of span names to print (default 10)")
    args = parser.parse_args(argv)

    try:
        text = (sys.stdin.read() if args.file == "-"
                else open(args.file, "r", encoding="utf-8").read())
        document = json.loads(text)
    except (OSError, ValueError) as error:
        print("error: %s" % error, file=sys.stderr)
        return 1

    rows = summarise(document)
    if not rows:
        print("no span events")
        return 0
    total_self = sum(row[3] for row in rows) or 1.0
    print("%-40s %8s %12s %12s %6s"
          % ("span", "count", "total_us", "self_us", "self%"))
    for name, count, total, self_total in rows[:args.k]:
        print("%-40s %8d %12.1f %12.1f %5.1f%%"
              % (name, count, total, self_total,
                 100.0 * self_total / total_self))
    if len(rows) > args.k:
        print("... %d more span name(s)" % (len(rows) - args.k))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
