// Section 6 application: multiple caches/mirrors of a set of objects.
//
// Every cache is an identity view over Object(id); stale entries make a
// cache partially sound, partial fills make it partially complete. The
// confidence of "object X is live" is computed exactly via the signature
// counter, and approximated by Monte-Carlo sampling for a larger fleet.
//
// Run: ./build/examples/web_caches

#include <algorithm>
#include <cstdio>
#include <vector>

#include "psc/counting/confidence.h"
#include "psc/counting/world_sampler.h"
#include "psc/workload/cache_workload.h"

int main() {
  // --- Exact confidence on a small fleet -------------------------------
  psc::CacheConfig config;
  config.num_objects = 12;
  config.num_caches = 4;
  config.coverage = 0.7;
  config.staleness = 0.15;
  config.seed = 2001;
  auto workload = psc::MakeCacheWorkload(config);
  if (!workload.ok()) return 1;

  auto instance =
      psc::IdentityInstance::CreateOverExtensions(workload->collection);
  if (!instance.ok()) return 1;
  auto table = psc::ComputeBaseFactConfidences(*instance);
  if (!table.ok()) {
    std::fprintf(stderr, "%s\n", table.status().ToString().c_str());
    return 1;
  }

  // Rank cached objects by confidence, annotate live/stale ground truth.
  std::vector<const psc::TupleConfidence*> ranked;
  for (const psc::TupleConfidence& entry : table->entries) {
    ranked.push_back(&entry);
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const auto* a, const auto* b) {
              return a->confidence > b->confidence;
            });
  std::printf("cached objects ranked by confidence (|poss| = %s):\n",
              table->world_count.ToString().c_str());
  for (const auto* entry : ranked) {
    const int64_t id = entry->tuple[0].AsInt();
    const bool live = workload->live_objects.count(id) > 0;
    auto group = instance->GroupIndexOf(entry->tuple);
    const int caches =
        group.ok()
            ? __builtin_popcountll(instance->groups()[*group].signature)
            : 0;
    std::printf("  object %3lld  conf=%.3f  caches=%d  (%s)\n",
                static_cast<long long>(id), entry->confidence, caches,
                live ? "live" : "STALE");
  }

  // --- Monte-Carlo estimation on a bigger fleet ------------------------
  // Exact-uniform sampling stays feasible at scale when the claimed
  // bounds are tight (high coverage, low staleness): the soundness
  // thresholds prune the count-vector space to a narrow feasible band.
  psc::CacheConfig big = config;
  big.num_objects = 2000;
  big.num_caches = 2;
  big.coverage = 0.95;
  big.staleness = 0.02;
  auto big_workload = psc::MakeCacheWorkload(big);
  if (!big_workload.ok()) return 1;
  auto big_instance =
      psc::IdentityInstance::CreateOverExtensions(big_workload->collection);
  if (!big_instance.ok()) return 1;
  auto sampler = psc::WorldSampler::Create(&*big_instance);
  if (!sampler.ok()) {
    std::fprintf(stderr, "%s\n", sampler.status().ToString().c_str());
    return 1;
  }
  psc::Rng rng(7);
  const int samples = 500;
  size_t total_size = 0;
  for (int i = 0; i < samples; ++i) {
    total_size += sampler->Sample(&rng).size();
  }
  std::printf(
      "\nlarge fleet: %lld objects x %lld caches, %zu feasible shapes\n",
      static_cast<long long>(big.num_objects),
      static_cast<long long>(big.num_caches), sampler->num_shapes());
  std::printf("average sampled-world size over %d exact-uniform samples: "
              "%.1f objects\n",
              samples, static_cast<double>(total_size) / samples);
  return 0;
}
