// Quickstart: the paper's Example 5.1 in ~60 lines.
//
// Two partially sound/complete sources report overlapping unary facts;
// we check consistency, compute exact per-fact confidences, and answer a
// selection query under the possible-worlds semantics.
//
// Build & run:  cmake --build build && ./build/examples/quickstart

#include <cstdio>

#include "psc/core/query_system.h"
#include "psc/parser/parser.h"

namespace {

constexpr const char* kCollectionText = R"(
  # Example 5.1 of Mendelzon & Mihaila (PODS 2001):
  #   S1 = <Id_R, {R("a"), R("b")}, 0.5, 0.5>
  #   S2 = <Id_R, {R("b"), R("c")}, 0.5, 0.5>
  source S1 {
    view: V1(x) <- R(x)
    completeness: 0.5
    soundness: 0.5
    facts: V1("a"), V1("b")
  }
  source S2 {
    view: V2(x) <- R(x)
    completeness: 0.5
    soundness: 0.5
    facts: V2("b"), V2("c")
  }
)";

}  // namespace

int main() {
  // 1. Parse the source collection from the text format.
  auto collection = psc::ParseCollection(kCollectionText);
  if (!collection.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 collection.status().ToString().c_str());
    return 1;
  }
  auto system = psc::QuerySystem::Create(*collection);
  if (!system.ok()) return 1;

  // 2. Is there any global database consistent with both claims?
  auto report = system->CheckConsistency();
  if (!report.ok()) return 1;
  std::printf("consistency: %s (method: %s)\n",
              psc::ConsistencyVerdictToString(report->verdict),
              report->method.c_str());

  // 3. Exact confidence of every base fact over the finite domain
  //    {"a","b","c","d1","d2"} (m = 2 unseen constants).
  const std::vector<psc::Value> domain = {
      psc::Value("a"), psc::Value("b"), psc::Value("c"), psc::Value("d1"),
      psc::Value("d2")};
  auto table = system->BaseConfidences(domain);
  if (!table.ok()) return 1;
  std::printf("\n|poss(S)| = %s possible worlds\n",
              table->world_count.ToString().c_str());
  for (const psc::TupleConfidence& entry : table->entries) {
    std::printf("  confidence R%s = %.4f\n",
                psc::TupleToString(entry.tuple).c_str(), entry.confidence);
  }

  // 4. Query answering: which facts other than "b" are possible?
  //    Q = sigma(x != "b")(R), with certain/possible/confidence semantics.
  auto query = psc::AlgebraExpr::Select(
      psc::AlgebraExpr::Base("R", 1),
      {psc::Condition::WithConstant(0, "Ne", psc::Value("b"))});
  auto answer = system->AnswerExact(query, domain);
  if (!answer.ok()) return 1;
  std::printf("\nQ = %s over %llu worlds\n", query->ToString().c_str(),
              static_cast<unsigned long long>(answer->worlds_used));
  std::printf("  certain answer : %zu tuples\n", answer->certain.size());
  std::printf("  possible answer: %zu tuples\n", answer->possible.size());
  for (const auto& [tuple, confidence] : answer->confidences.entries()) {
    std::printf("  confidence %s = %.4f\n",
                psc::TupleToString(tuple).c_str(), confidence);
  }
  return 0;
}
