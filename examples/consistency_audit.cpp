// Auditing an inconsistent federation (extension of the paper's Section 6
// discussion): when no possible world satisfies every source's claims,
// find out (a) which sources to blame, (b) the maximal consistent
// sub-federations, and (c) how far the claims must be uniformly relaxed.
//
// Run: ./build/examples/consistency_audit

#include <cstdio>

#include "psc/consistency/diagnostics.h"
#include "psc/parser/parser.h"

namespace {

// Three catalogs of the same product database disagree: A and B claim to
// be exact but hold different sets; C is modest about its quality.
constexpr const char* kFederation = R"(
  source CatalogA {
    view: VA(p) <- Product(p)
    completeness: 1
    soundness: 1
    facts: VA(101), VA(102), VA(103)
  }
  source CatalogB {
    view: VB(p) <- Product(p)
    completeness: 1
    soundness: 1
    facts: VB(102), VB(103), VB(104)
  }
  source CatalogC {
    view: VC(p) <- Product(p)
    completeness: 1/2
    soundness: 2/3
    facts: VC(101), VC(104), VC(105)
  }
)";

}  // namespace

int main() {
  auto collection = psc::ParseCollection(kFederation);
  if (!collection.ok()) {
    std::fprintf(stderr, "%s\n", collection.status().ToString().c_str());
    return 1;
  }
  psc::GeneralConsistencyChecker checker;

  auto report = checker.Check(*collection);
  if (!report.ok()) return 1;
  std::printf("federation verdict: %s\n",
              psc::ConsistencyVerdictToString(report->verdict));

  auto blames = psc::BlameSources(*collection, checker);
  if (!blames.ok()) return 1;
  std::printf("\nblame analysis (drop one source):\n");
  for (const psc::SourceBlame& blame : *blames) {
    std::printf("  without %-9s -> %s\n", blame.source_name.c_str(),
                psc::ConsistencyVerdictToString(blame.verdict_without));
  }

  auto maximal = psc::MaximalConsistentSubcollections(*collection, checker);
  if (!maximal.ok()) return 1;
  std::printf("\nmaximal consistent sub-federations:\n");
  for (const std::vector<std::string>& names : *maximal) {
    std::printf("  {");
    for (size_t i = 0; i < names.size(); ++i) {
      std::printf("%s%s", i ? ", " : " ", names[i].c_str());
    }
    std::printf(" }\n");
  }

  auto lambda = psc::MaxUniformRelaxation(*collection, checker,
                                          /*precision=*/64);
  if (!lambda.ok()) return 1;
  std::printf(
      "\nlargest uniform relaxation factor keeping all sources: %s "
      "(= %.3f)\n",
      lambda->ToString().c_str(), lambda->ToDouble());
  std::printf("interpretation: scaling every claimed bound by this factor "
              "makes the federation satisfiable.\n");
  return 0;
}
