// The paper's motivating example (Section 1.1): integrating climate data
// from partially sound and complete station feeds over the global schema
//   Station(id, lat, lon, country)
//   Temperature(station, year, month, value).
//
// A synthetic GHCN world stands in for the real NOAA archive (see
// DESIGN.md, substitutions): we generate a ground truth, derive noisy
// sources with measured coverage/error, and demonstrate
//  * that the ground truth is one of the possible worlds,
//  * consistency checking with witness construction,
//  * what happens when a source overclaims its quality.
//
// Run: ./build/examples/climatology

#include <cstdio>

#include "psc/consistency/diagnostics.h"
#include "psc/consistency/general_consistency.h"
#include "psc/parser/parser.h"
#include "psc/rewriting/bucket_rewriter.h"
#include "psc/source/measures.h"
#include "psc/workload/ghcn.h"

using psc::ConsistencyVerdict;

int main() {
  psc::GhcnConfig config;
  config.num_stations = 9;
  config.countries = {"Canada", "US", "Mexico"};
  config.start_year = 1990;
  config.end_year = 1991;
  psc::GhcnGenerator generator(config, /*seed=*/2001);
  const psc::GhcnWorld world = generator.GenerateTruth();
  std::printf("ground truth: %zu stations, %zu temperature readings\n",
              world.truth.GetRelation("Station").size(),
              world.truth.GetRelation("Temperature").size());

  // The federation of the paper's S0..S3.
  auto s0 = generator.MakeCatalogSource(world, "S0");
  auto s1 = generator.MakeCountrySource(world, "S1", "Canada",
                                        /*after_year=*/1900,
                                        /*coverage=*/0.8, /*error_rate=*/0.1);
  auto s2 = generator.MakeCountrySource(world, "S2", "US", 1900, 0.6, 0.25);
  auto s3 = generator.MakeStationSource(world, "S3", world.station_ids[0],
                                        0.9, 0.0);
  if (!s0.ok() || !s1.ok() || !s2.ok() || !s3.ok()) return 1;
  auto collection = psc::SourceCollection::Create({*s0, *s1, *s2, *s3});
  if (!collection.ok()) return 1;

  std::printf("\nper-source descriptors (claimed = measured on truth):\n");
  for (const psc::SourceDescriptor& source : collection->sources()) {
    auto measures = psc::ComputeMeasures(source, world.truth);
    if (!measures.ok()) return 1;
    std::printf("  %-3s |v|=%4zu  completeness>=%-6s soundness>=%-6s  "
                "(measured c=%.3f s=%.3f)\n",
                source.name().c_str(), source.extension_size(),
                source.completeness_bound().ToString().c_str(),
                source.soundness_bound().ToString().c_str(),
                measures->completeness.ToDouble(),
                measures->soundness.ToDouble());
  }

  auto truth_possible = collection->IsPossibleWorld(world.truth);
  if (!truth_possible.ok()) return 1;
  std::printf("\nground truth is a possible world: %s\n",
              *truth_possible ? "yes" : "no");

  // An over-claiming source breaks the federation.
  auto liar = generator.MakeCountrySource(world, "Liar", "Mexico", 1900,
                                          0.5, 0.4, /*overclaim=*/true);
  if (!liar.ok()) return 1;
  auto with_liar = psc::SourceCollection::Create(
      {*s0, *s1, *s2, *s3, *liar});
  if (!with_liar.ok()) return 1;
  auto liar_possible = with_liar->IsPossibleWorld(world.truth);
  if (!liar_possible.ok()) return 1;
  std::printf("with the overclaiming source, truth still possible: %s\n",
              *liar_possible ? "yes" : "no");

  // Answering a query using the views (Information Manifold style): the
  // rewriter finds source combinations whose unfolding is contained in
  // the query and evaluates them over the extensions.
  auto query = psc::ParseQuery(
      "Ans(s, y, m, v) <- Temperature(s, y, m, v), "
      "Station(s, lat, lon, \"Canada\"), After(y, 1900)");
  if (!query.ok()) return 1;
  psc::BucketRewriter rewriter(&*collection);
  auto rewritings = rewriter.Rewrite(*query);
  auto view_answer = rewriter.AnswerUsingViews(*query);
  if (!rewritings.ok() || !view_answer.ok()) return 1;
  std::printf("\nview-based answering of\n  %s\n", query->ToString().c_str());
  std::printf("  %zu sound rewritings; %zu answer tuples from the sources\n",
              rewritings->size(), view_answer->size());

  // Blame analysis (Section 6's "detect the most trustworthy sources",
  // implemented as an extension): whose removal restores the truth?
  std::printf("\nblame: which single source, when dropped, readmits the "
              "ground truth?\n");
  for (size_t skip = 0; skip < with_liar->size(); ++skip) {
    std::vector<psc::SourceDescriptor> rest;
    for (size_t i = 0; i < with_liar->size(); ++i) {
      if (i != skip) rest.push_back(with_liar->source(i));
    }
    auto sub = psc::SourceCollection::Create(std::move(rest));
    if (!sub.ok()) return 1;
    auto possible = sub->IsPossibleWorld(world.truth);
    if (!possible.ok()) return 1;
    std::printf("  without %-5s -> truth %s\n",
                with_liar->source(skip).name().c_str(),
                *possible ? "POSSIBLE" : "excluded");
  }
  return 0;
}
