# Three catalogs with over-confident claims; the federation is
# inconsistent.
#
#   psc audit data/conflicted.psc
source CatalogA {
  view: VA(p) <- Product(p)
  completeness: 1
  soundness: 1
  facts: VA(101), VA(102), VA(103)
}
source CatalogB {
  view: VB(p) <- Product(p)
  completeness: 1
  soundness: 1
  facts: VB(102), VB(103), VB(104)
}
source CatalogC {
  view: VC(p) <- Product(p)
  completeness: 1/2
  soundness: 2/3
  facts: VC(101), VC(104), VC(105)
}
