# Example 5.1 of Mendelzon & Mihaila (PODS 2001): two half-sound,
# half-complete mirrors of a unary relation R.
#
#   psc check data/example51.psc
#   psc confidences data/example51.psc --domain a,b,c,d1,d2
#   psc answer data/example51.psc 'Ans(x) <- R(x)' --domain a,b,c,d1
source S1 {
  view: V1(x) <- R(x)
  completeness: 0.5
  soundness: 0.5
  facts: V1("a"), V1("b")
}
source S2 {
  view: V2(x) <- R(x)
  completeness: 0.5
  soundness: 0.5
  facts: V2("b"), V2("c")
}
