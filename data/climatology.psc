# The paper's Section 1.1 climatology federation, miniaturized.
#
#   psc check data/climatology.psc
source S0 {
  view: V0(s, lat, lon, c) <- Station(s, lat, lon, c)
  completeness: 1
  soundness: 1
  facts: V0(100, 45, -75, "Canada"), V0(200, 40, -74, "US")
}
source S1 {
  view: V1(s, y, m, v) <- Temperature(s, y, m, v),
                          Station(s, lat, lon, "Canada"), After(y, 1900)
  completeness: 1/2
  soundness: 1/2
  facts: V1(100, 1990, 1, -105), V1(100, 1990, 2, -80)
}
source S3 {
  view: V3(y, m, v) <- Temperature(200, y, m, v)
  completeness: 1
  soundness: 1
  facts: V3(1990, 1, 30)
}
