// Serving-path benchmark for pscd's resident engine (psc/serve/): what
// does keeping query state warm in one long-lived process buy over the
// one-shot CLI lifecycle, and how does the dispatcher hold up under
// concurrent sessions?
//
//  * warm path — one resident serve::Engine; N simulated closed-loop
//    clients (each keeps exactly one request outstanding, submitting its
//    next request from the previous response's callback) hammer a small
//    pool of answer queries, with one churn session interleaving
//    apply-delta mutations in the "churn" configuration. Compiled plans,
//    eval hash indexes, the consistency witness and the delta-aware
//    answer cache all persist across requests, and compatible answers
//    from different sessions are fused into single batches.
//
//  * cold baseline — the exact work a one-shot `psc answer` pays per
//    request: parse the collection text, build the system, check
//    consistency, compile and answer, then throw everything away.
//
// The sweep reports throughput and interpolated p50/p95/p99 latency
// (bench_util.h) per concurrency point from 1 to 10k sessions, plus the
// warm/cold speedup (target: >= 10x at >= 1k sessions). Warm and cold
// answers are cross-checked byte-for-byte through the protocol formatter
// (nonzero exit on mismatch). `--smoke` runs a seconds-scale subset for
// CI; the final line is the standard structured metrics record.

#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <string>
#include <vector>

#include "bench_util.h"
#include "benchmark/benchmark.h"
#include "psc/core/query_system.h"
#include "psc/obs/metrics.h"
#include "psc/parser/parser.h"
#include "psc/serve/engine.h"
#include "psc/util/string_util.h"

namespace psc {
namespace {

int g_failures = 0;

void Check(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "!! MISMATCH: %s\n", what);
    ++g_failures;
  }
}

/// The served collection: three overlapping half-sound mirrors of R over
/// six constants. Sized so a cold request pays visible solver work
/// (consistency check + world enumeration) while a warm repeat is an
/// answer-cache hit — the gap the resident server exists to exploit.
const char* kCollectionText =
    "source S1 {\n"
    "  view: V1(x) <- R(x)\n"
    "  completeness: 0.5\n"
    "  soundness: 0.5\n"
    "  facts: V1(\"a\"), V1(\"b\"), V1(\"c\"), V1(\"d\")\n"
    "}\n"
    "source S2 {\n"
    "  view: V2(x) <- R(x)\n"
    "  completeness: 0.5\n"
    "  soundness: 0.5\n"
    "  facts: V2(\"c\"), V2(\"d\"), V2(\"e\"), V2(\"f\")\n"
    "}\n"
    "source S3 {\n"
    "  view: V3(x) <- R(x)\n"
    "  completeness: 0.5\n"
    "  soundness: 0.5\n"
    "  facts: V3(\"a\"), V3(\"d\"), V3(\"e\"), V3(\"f\")\n"
    "}\n";

const char* kQueries[] = {
    "Ans(x) <- R(x)",
    "Ans(x, y) <- R(x), R(y)",
    "Ans(x) <- R(x), R(x)",
};
constexpr size_t kQueryCount = sizeof(kQueries) / sizeof(kQueries[0]);

/// Delta scripts the churn session alternates between: S1 gains "c",
/// then loses it again — every answer cache entry over R invalidates.
const char* kChurnScripts[] = {"+ S1(\"e\")", "- S1(\"e\")"};

std::string LoadRequest() {
  serve::JsonObjectWriter writer;
  writer.String("verb", "load");
  writer.String("text", kCollectionText);
  return writer.Finish();
}

std::string AnswerRequest(size_t query_index, const std::string& id) {
  serve::JsonObjectWriter writer;
  writer.String("verb", "answer");
  if (!id.empty()) writer.String("id", id);
  writer.String("query", kQueries[query_index % kQueryCount]);
  return writer.Finish();
}

std::string DeltaRequest(size_t step) {
  serve::JsonObjectWriter writer;
  writer.String("verb", "apply-delta");
  writer.String("script", kChurnScripts[step % 2]);
  return writer.Finish();
}

uint64_t NowMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

serve::EngineOptions WarmEngineOptions() {
  serve::EngineOptions options;
  options.solver_threads = 1;  // queries are tiny; avoid per-call pools
  options.dispatch_threads = 4;
  options.max_queue = 0;  // closed-loop clients self-limit outstanding work
  options.max_batch = 16;
  return options;
}

/// One concurrency point of the closed-loop sweep. Each of `sessions`
/// simulated clients issues `per_session` requests, one outstanding at a
/// time; with `churn`, session 0 alternates apply-delta mutations between
/// its answers. Returns wall-clock ms and fills per-request latencies.
double RunWarmPoint(serve::Engine& engine, size_t sessions,
                    size_t per_session, bool churn,
                    std::vector<double>* latencies_us) {
  struct Session {
    size_t sent = 0;
    uint64_t submitted_at = 0;
    std::vector<double> latencies;
  };
  std::vector<Session> state(sessions);
  for (Session& session : state) session.latencies.reserve(per_session);

  std::mutex done_mutex;
  std::condition_variable done_cv;
  size_t active = sessions;

  // The per-session request chain: the response callback records the
  // latency and submits the session's next request, so each session keeps
  // exactly one request outstanding — a closed loop.
  std::function<void(size_t)> submit_next = [&](size_t s) {
    Session& session = state[s];
    const size_t step = session.sent++;
    session.submitted_at = NowMicros();
    const bool mutate = churn && s == 0 && step % 2 == 1;
    const std::string request =
        mutate ? DeltaRequest(step) : AnswerRequest(s + step, "");
    engine.Submit(s, request, [&, s](const std::string&) {
      Session& mine = state[s];
      mine.latencies.push_back(
          static_cast<double>(NowMicros() - mine.submitted_at));
      if (mine.sent < per_session) {
        submit_next(s);
        return;
      }
      std::lock_guard<std::mutex> lock(done_mutex);
      if (--active == 0) done_cv.notify_one();
    });
  };

  bench_util::Stopwatch stopwatch;
  for (size_t s = 0; s < sessions; ++s) submit_next(s);
  {
    std::unique_lock<std::mutex> lock(done_mutex);
    done_cv.wait(lock, [&] { return active == 0; });
  }
  const double elapsed_ms = stopwatch.ElapsedMillis();
  for (const Session& session : state) {
    latencies_us->insert(latencies_us->end(), session.latencies.begin(),
                         session.latencies.end());
  }
  return elapsed_ms;
}

/// The one-shot lifecycle a CLI invocation pays per request, measured
/// over `requests` iterations: parse text, build the system, check,
/// compile, answer, discard.
double RunColdBaseline(size_t requests) {
  bench_util::Stopwatch stopwatch;
  uint64_t sink = 0;
  for (size_t r = 0; r < requests; ++r) {
    auto collection = ParseCollection(kCollectionText);
    if (!collection.ok()) std::abort();
    const std::vector<Value> domain = collection->MentionedConstants();
    QuerySystem::Options options;
    options.threads = 1;
    auto system = QuerySystem::Create(std::move(*collection), options);
    if (!system.ok()) std::abort();
    auto report = system->CheckConsistency();
    if (!report.ok()) std::abort();
    auto query = ParseQuery(kQueries[r % kQueryCount]);
    if (!query.ok()) std::abort();
    auto answer = system->AnswerExact(*query, domain);
    if (!answer.ok()) std::abort();
    sink += answer->confidences.size();
  }
  benchmark::DoNotOptimize(sink);
  return stopwatch.ElapsedMillis();
}

/// Byte-identical cross-check through the protocol formatter: a fresh
/// (cold) engine and the resident (warm) engine must produce the same
/// response line for every query, and a warm repeat must match except
/// for the from_cache flag.
void CrossCheckAnswers(serve::Engine& warm) {
  const auto payload = [](const std::string& response) {
    const size_t at = response.find("\"worlds_used\"");
    return at == std::string::npos ? response : response.substr(at);
  };
  for (size_t q = 0; q < kQueryCount; ++q) {
    serve::EngineOptions cold_options;
    cold_options.solver_threads = 1;
    cold_options.dispatch_threads = 0;  // manual pump: fully deterministic
    serve::Engine cold(cold_options);
    const std::string loaded = cold.Call(1, LoadRequest());
    Check(loaded.find("\"ok\":true") != std::string::npos, "cold load failed");
    const std::string request = AnswerRequest(q, "x");
    const std::string cold_line = cold.Call(1, request);
    const std::string warm_line = warm.Call(1, request);
    const std::string warm_repeat = warm.Call(1, request);
    Check(cold_line == warm_line,
          "warm response differs from cold response byte-for-byte");
    Check(payload(warm_repeat) == payload(warm_line),
          "cached warm answer differs from its first computation");
  }
}

struct SweepPoint {
  size_t sessions;
  bool churn;
};

void RunSweep(bool smoke) {
  const std::vector<SweepPoint> points =
      smoke ? std::vector<SweepPoint>{{1, false}, {8, false}, {64, true}}
            : std::vector<SweepPoint>{{1, false},
                                      {10, false},
                                      {100, false},
                                      {1000, false},
                                      {1000, true},
                                      {10000, false}};
  const size_t total_requests = smoke ? 1024 : 20000;

  serve::Engine engine(WarmEngineOptions());
  const std::string loaded = engine.Call(0, LoadRequest());
  if (loaded.find("\"ok\":true") == std::string::npos) {
    std::fprintf(stderr, "load failed: %s\n", loaded.c_str());
    std::abort();
  }
  CrossCheckAnswers(engine);

  // Cold baseline: concurrency-independent (the CLI is sequential), so
  // measure once and reuse the per-request cost at every point.
  const size_t cold_requests = smoke ? 64 : 256;
  const double cold_ms = RunColdBaseline(cold_requests);
  const double cold_rps =
      static_cast<double>(cold_requests) / (cold_ms / 1000.0);

  std::printf("cold baseline: %.3f ms/request (%.0f req/s one-shot)\n",
              cold_ms / static_cast<double>(cold_requests), cold_rps);
  std::printf("%9s %6s %9s %11s | %9s %9s %9s | %9s\n", "sessions", "churn",
              "requests", "warm req/s", "p50 us", "p95 us", "p99 us",
              "speedup");

  double speedup_at_1k = 0;
  for (const SweepPoint& point : points) {
    const size_t per_session =
        std::max<size_t>(1, total_requests / point.sessions);
    std::vector<double> latencies_us;
    latencies_us.reserve(point.sessions * per_session);
    const double elapsed_ms = RunWarmPoint(engine, point.sessions, per_session,
                                           point.churn, &latencies_us);
    const double warm_rps =
        static_cast<double>(latencies_us.size()) / (elapsed_ms / 1000.0);
    const bench_util::LatencySummary summary =
        bench_util::Summarize(std::move(latencies_us));
    const double speedup = warm_rps / cold_rps;
    if (point.sessions >= 1000 && !point.churn && speedup_at_1k == 0) {
      speedup_at_1k = speedup;
    }
    std::printf("%9zu %6s %9zu %11.0f | %9.0f %9.0f %9.0f | %8.1fx\n",
                point.sessions, point.churn ? "yes" : "no", summary.count,
                warm_rps, summary.p50, summary.p95, summary.p99, speedup);
  }

  if (!smoke) {
    if (speedup_at_1k < 10.0) {
      std::fprintf(stderr,
                   "!! BELOW TARGET: warm/cold speedup %.1fx < 10x at 1k "
                   "sessions\n",
                   speedup_at_1k);
      ++g_failures;
    }
    PSC_OBS_GAUGE_SET("serve.bench.speedup_x100",
                      static_cast<int64_t>(speedup_at_1k * 100.0));
  }
}

// ---------------------------------------------------------------------------
// google-benchmark section (full runs only)
// ---------------------------------------------------------------------------

void BM_WarmAnswer(benchmark::State& state) {
  serve::EngineOptions options;
  options.solver_threads = 1;
  options.dispatch_threads = 1;
  serve::Engine engine(options);
  if (engine.Call(0, LoadRequest()).find("\"ok\":true") == std::string::npos) {
    std::abort();
  }
  size_t q = 0;
  for (auto _ : state) {
    const std::string response = engine.Call(0, AnswerRequest(q++, ""));
    benchmark::DoNotOptimize(response.data());
  }
}
BENCHMARK(BM_WarmAnswer);

}  // namespace
}  // namespace psc

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  std::printf("=== resident serving: warm vs one-shot sweep%s ===\n",
              smoke ? " (smoke)" : "");
  psc::RunSweep(smoke);
  if (!smoke) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
  }
  psc::bench_util::EmitMetricsRecord("bench_serving");
  if (psc::g_failures > 0) {
    std::fprintf(stderr, "%d cross-check failures\n", psc::g_failures);
    return 1;
  }
  return 0;
}
