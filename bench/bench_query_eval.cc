// Compiled-vs-legacy conjunctive-query evaluation sweep: chain joins of
// 1–4 atoms over random edge relations, crossed with relation size and
// join selectivity (edge fanout). Every configuration evaluates with both
// engines and checks the results are identical, so a planner or index bug
// shows up as "!! MISMATCH" instead of a fast wrong answer.
//
// The headline number is the speedup column: the compiled slot-based
// plans with lazy hash indexes (relational/query_plan.h) are expected to
// beat the legacy scan-per-depth interpreter by well over 5x on 3+-atom
// joins over >= 1000-tuple relations, and to stay at least even on the
// tiny databases world enumeration churns through.
//
// `--smoke` runs a seconds-scale subset for CI (tools/ci_matrix.sh); the
// full sweep plus the google-benchmark section is the default. The final
// line is the standard structured metrics record (bench_util.h), which
// carries the eval.* counters for tools/check_metrics_schema.py.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "benchmark/benchmark.h"
#include "psc/parser/parser.h"
#include "psc/relational/conjunctive_query.h"
#include "psc/relational/database.h"
#include "psc/relational/query_plan.h"
#include "psc/util/random.h"

namespace psc {
namespace {

/// A random edge relation E with `edges` tuples over a `domain`-node
/// universe: fanout edges/domain controls join selectivity.
Database MakeGraphDb(uint64_t seed, int64_t edges, int64_t domain) {
  Rng rng(seed);
  Database db;
  while (db.size() < static_cast<size_t>(edges)) {
    db.AddFact("E", {Value(rng.UniformInt(0, domain - 1)),
                     Value(rng.UniformInt(0, domain - 1))});
  }
  return db;
}

/// The k-atom chain join V(v0, vk) <- E(v0, v1), ..., E(v_{k-1}, v_k),
/// optionally guarded by a built-in on the endpoints.
ConjunctiveQuery ChainQuery(int atoms, bool with_builtin) {
  std::string text = "V(v0, v" + std::to_string(atoms) + ") <- ";
  for (int i = 0; i < atoms; ++i) {
    if (i > 0) text += ", ";
    text += "E(v" + std::to_string(i) + ", v" + std::to_string(i + 1) + ")";
  }
  if (with_builtin) text += ", Before(v0, v" + std::to_string(atoms) + ")";
  auto query = ParseQuery(text);
  if (!query.ok()) {
    std::fprintf(stderr, "bad bench query %s: %s\n", text.c_str(),
                 query.status().ToString().c_str());
    std::abort();
  }
  return std::move(query).ValueOrDie();
}

/// Times `reps` evaluations with the given engine; returns per-eval ms and
/// stores the (engine-independent) result size for the equality check.
double TimeEngine(const ConjunctiveQuery& query, const Database& db,
                  bool compiled, int reps, Relation* result) {
  eval::SetCompiledEvalEnabled(compiled);
  bench_util::Stopwatch stopwatch;
  for (int r = 0; r < reps; ++r) {
    auto evaluated = query.Evaluate(db);
    if (!evaluated.ok()) {
      std::fprintf(stderr, "evaluate failed: %s\n",
                   evaluated.status().ToString().c_str());
      std::abort();
    }
    if (r + 1 == reps) *result = *std::move(evaluated);
  }
  return stopwatch.ElapsedMillis() / reps;
}

struct SweepConfig {
  int64_t edges;
  int64_t domain;  // fanout = edges / domain
};

int RunSweep(bool smoke) {
  const std::vector<int> atom_counts =
      smoke ? std::vector<int>{2, 3} : std::vector<int>{1, 2, 3, 4};
  const std::vector<SweepConfig> configs =
      smoke ? std::vector<SweepConfig>{{64, 32}}
            : std::vector<SweepConfig>{{100, 100},   // tiny, sparse
                                       {1000, 1000},  // fanout 1
                                       {1000, 250},   // fanout 4
                                       {4000, 2000}};
  const int compiled_reps = smoke ? 2 : 10;
  const int legacy_reps = smoke ? 1 : 2;

  std::printf("%6s %7s %7s %9s | %12s %12s %9s | %8s %s\n", "atoms",
              "edges", "domain", "builtin", "legacy ms", "compiled ms",
              "speedup", "tuples", "check");
  int mismatches = 0;
  for (const SweepConfig& config : configs) {
    const Database db = MakeGraphDb(/*seed=*/17, config.edges, config.domain);
    for (const int atoms : atom_counts) {
      for (const bool with_builtin : {false, true}) {
        // Quadratic-and-worse legacy blowup: skip the pathological corner
        // in the full sweep rather than waiting minutes for it.
        if (!smoke && atoms == 4 && config.edges >= 4000) continue;
        const ConjunctiveQuery query = ChainQuery(atoms, with_builtin);
        eval::ClearQueryPlanCache();
        Relation compiled_result, legacy_result;
        const double legacy_ms =
            TimeEngine(query, db, /*compiled=*/false, legacy_reps,
                       &legacy_result);
        const double compiled_ms =
            TimeEngine(query, db, /*compiled=*/true, compiled_reps,
                       &compiled_result);
        const bool match = compiled_result == legacy_result;
        mismatches += match ? 0 : 1;
        std::printf("%6d %7lld %7lld %9s | %12.3f %12.3f %8.1fx | %8zu %s\n",
                    atoms, static_cast<long long>(config.edges),
                    static_cast<long long>(config.domain),
                    with_builtin ? "yes" : "no", legacy_ms, compiled_ms,
                    legacy_ms / std::max(compiled_ms, 1e-6),
                    compiled_result.size(),
                    match ? "ok" : "!! MISMATCH");
      }
    }
  }
  eval::SetCompiledEvalEnabled(true);
  return mismatches;
}

void BM_ChainJoin(benchmark::State& state) {
  const int atoms = static_cast<int>(state.range(0));
  const bool compiled = state.range(1) != 0;
  const Database db = MakeGraphDb(/*seed=*/17, /*edges=*/1000, /*domain=*/500);
  const ConjunctiveQuery query = ChainQuery(atoms, /*with_builtin=*/false);
  eval::SetCompiledEvalEnabled(compiled);
  for (auto _ : state) {
    auto result = query.Evaluate(db);
    benchmark::DoNotOptimize(result);
  }
  eval::SetCompiledEvalEnabled(true);
}
BENCHMARK(BM_ChainJoin)
    ->ArgNames({"atoms", "compiled"})
    ->Args({2, 0})
    ->Args({2, 1})
    ->Args({3, 0})
    ->Args({3, 1});

}  // namespace
}  // namespace psc

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  std::printf("=== compiled query evaluation: chain-join sweep%s ===\n",
              smoke ? " (smoke)" : "");
  const int mismatches = psc::RunSweep(smoke);
  if (!smoke) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
  }
  psc::bench_util::EmitMetricsRecord("bench_query_eval");
  if (mismatches > 0) {
    std::fprintf(stderr, "%d engine mismatches\n", mismatches);
    return 1;
  }
  return 0;
}
