// E5 — Theorem 5.1: compositional (Definition 5.1) vs exact confidence.
//
// The compositional engine runs in time polynomial in the answer size;
// exact confidences require enumerating poss(S). The table reports both
// runtimes and the maximum absolute confidence deviation for three query
// classes: selection (always exact), projection over independent facts
// (exact), and a correlated self-product (the documented independence
// caveat of Theorem 5.1).

#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "benchmark/benchmark.h"
#include "psc/core/query_system.h"

namespace psc {
namespace {

std::vector<Value> IntDomain(int64_t n) {
  std::vector<Value> domain;
  for (int64_t i = 0; i < n; ++i) domain.push_back(Value(i));
  return domain;
}

QuerySystem MakeSystem() {
  Relation v1 = {{Value(int64_t{0})}, {Value(int64_t{1})}};
  Relation v2 = {{Value(int64_t{1})}, {Value(int64_t{2})}};
  auto s1 = SourceDescriptor::Create("S1", ConjunctiveQuery::Identity("R", 1),
                                     v1, Rational(1, 2), Rational(1, 2));
  auto s2 = SourceDescriptor::Create("S2", ConjunctiveQuery::Identity("R", 1),
                                     v2, Rational(1, 2), Rational(1, 2));
  auto collection = SourceCollection::Create({*s1, *s2});
  auto system = QuerySystem::Create(*collection);
  return std::move(system).ValueOrDie();
}

struct PlanCase {
  const char* name;
  AlgebraExprPtr plan;
};

std::vector<PlanCase> Plans() {
  auto base = AlgebraExpr::Base("R", 1);
  return {
      {"sigma(x<=1)(R)",
       AlgebraExpr::Select(base, {Condition::WithConstant(
                                     0, "Le", Value(int64_t{1}))})},
      {"pi0(R x R)",
       AlgebraExpr::Project(AlgebraExpr::Product(base, base), {0})},
      {"R x R",
       AlgebraExpr::Product(base, base)},
  };
}

void PrintTable() {
  std::printf(
      "=== E5: Definition 5.1 compositional vs exact confidences ===\n");
  std::printf("%6s | %-16s | %12s | %12s | %12s\n", "m", "query",
              "exact ms", "comp. ms", "max |delta|");
  const QuerySystem system = MakeSystem();
  for (const int64_t m : {1, 2, 4, 6, 8}) {
    const std::vector<Value> domain = IntDomain(3 + m);
    for (const PlanCase& plan_case : Plans()) {
      bench_util::Stopwatch stopwatch;
      auto exact = system.AnswerExact(plan_case.plan, domain);
      const double exact_ms = stopwatch.ElapsedMillis();
      stopwatch.Reset();
      auto compositional =
          system.AnswerCompositional(plan_case.plan, domain);
      const double comp_ms = stopwatch.ElapsedMillis();
      if (!exact.ok() || !compositional.ok()) {
        std::printf("%6lld | %-16s | failed\n", static_cast<long long>(m),
                    plan_case.name);
        continue;
      }
      double max_delta = 0.0;
      for (const auto& [tuple, confidence] :
           compositional->confidences.entries()) {
        auto exact_conf = exact->confidences.ConfidenceOf(tuple);
        if (exact_conf.ok()) {
          max_delta = std::max(max_delta, std::fabs(confidence - *exact_conf));
        }
      }
      std::printf("%6lld | %-16s | %12.3f | %12.3f | %12.5f\n",
                  static_cast<long long>(m), plan_case.name, exact_ms,
                  comp_ms, max_delta);
    }
  }
  std::printf(
      "(shape: selection deviates by 0; products/projections deviate only "
      "through the independence assumption; compositional time is flat "
      "while exact time grows with |poss(S)|.)\n\n");
}

void BM_ExactAnswer(benchmark::State& state) {
  const QuerySystem system = MakeSystem();
  const std::vector<Value> domain = IntDomain(3 + state.range(0));
  auto plan = Plans()[1].plan;
  for (auto _ : state) {
    auto answer = system.AnswerExact(plan, domain);
    benchmark::DoNotOptimize(answer);
  }
}
BENCHMARK(BM_ExactAnswer)->Arg(1)->Arg(4)->Arg(8);

void BM_CompositionalAnswer(benchmark::State& state) {
  const QuerySystem system = MakeSystem();
  const std::vector<Value> domain = IntDomain(3 + state.range(0));
  auto plan = Plans()[1].plan;
  for (auto _ : state) {
    auto answer = system.AnswerCompositional(plan, domain);
    benchmark::DoNotOptimize(answer);
  }
}
BENCHMARK(BM_CompositionalAnswer)->Arg(1)->Arg(4)->Arg(8)->Arg(64);

}  // namespace
}  // namespace psc

int main(int argc, char** argv) {
  psc::PrintTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  psc::bench_util::EmitMetricsRecord("bench_confidence_propagation");
  return 0;
}
