// E3 — Lemma 3.3 + Theorem 3.2 reduction: solving HITTING SET through the
// paper's chain HS → HS* → CONSISTENCY agrees with a direct
// branch-and-bound solver, and the reduction's cost profile exposes the
// NP-hardness of CONSISTENCY (the reduced instances force singleton
// signature groups, the group checker's worst case).

#include <cstdio>

#include "bench_util.h"
#include "benchmark/benchmark.h"
#include "psc/consistency/hitting_set.h"
#include "psc/workload/random_collections.h"

namespace psc {
namespace {

void PrintTable() {
  std::printf(
      "=== E3: HITTING SET direct vs via CONSISTENCY reduction ===\n");
  std::printf("%9s | %8s | %9s | %12s | %12s | %11s | %11s\n", "universe",
              "subsets", "solvable%", "direct ms", "reduction ms",
              "B&B nodes", "cons.shapes");
  Rng rng(20010901);
  for (const int64_t universe : {4, 6, 8, 10, 12, 14}) {
    const int64_t subsets = universe;
    const int trials = 15;
    int solvable = 0;
    int agreed = 0;
    double direct_ms = 0;
    double reduced_ms = 0;
    uint64_t direct_nodes = 0;
    uint64_t reduced_shapes = 0;
    for (int t = 0; t < trials; ++t) {
      const HittingSetInstance instance = MakeRandomHittingSet(
          universe, subsets, /*max_subset_size=*/3,
          /*budget=*/universe / 3, &rng);
      bench_util::Stopwatch stopwatch;
      auto direct = SolveHittingSet(instance, uint64_t{1} << 30);
      direct_ms += stopwatch.ElapsedMillis();
      stopwatch.Reset();
      auto via = SolveHittingSetViaConsistency(instance, uint64_t{1} << 30);
      reduced_ms += stopwatch.ElapsedMillis();
      if (!direct.ok() || !via.ok()) continue;
      solvable += direct->solvable ? 1 : 0;
      agreed += direct->solvable == via->solvable ? 1 : 0;
      direct_nodes += direct->nodes_expanded;
      reduced_shapes += via->nodes_expanded;
    }
    std::printf("%9lld | %8lld | %8d%% | %12.3f | %12.3f | %11.0f | %11.0f\n",
                static_cast<long long>(universe),
                static_cast<long long>(subsets),
                100 * solvable / trials, direct_ms / trials,
                reduced_ms / trials,
                static_cast<double>(direct_nodes) / trials,
                static_cast<double>(reduced_shapes) / trials);
    if (agreed != trials) {
      std::printf("  !! reduction disagreed on %d/%d instances\n",
                  trials - agreed, trials);
    }
  }
  std::printf(
      "(shape: both exact; the reduction pays a polynomial translation "
      "plus the consistency search, growing exponentially with the "
      "universe — Theorem 3.2's lower bound at work.)\n\n");
}

void BM_DirectHittingSet(benchmark::State& state) {
  Rng rng(5);
  const HittingSetInstance instance = MakeRandomHittingSet(
      state.range(0), state.range(0), 3, state.range(0) / 3, &rng);
  for (auto _ : state) {
    auto result = SolveHittingSet(instance, uint64_t{1} << 30);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_DirectHittingSet)->Arg(8)->Arg(12)->Arg(16);

void BM_HittingSetViaConsistency(benchmark::State& state) {
  Rng rng(5);
  const HittingSetInstance instance = MakeRandomHittingSet(
      state.range(0), state.range(0), 3, state.range(0) / 3, &rng);
  for (auto _ : state) {
    auto result = SolveHittingSetViaConsistency(instance, uint64_t{1} << 30);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_HittingSetViaConsistency)->Arg(8)->Arg(12);

}  // namespace
}  // namespace psc

int main(int argc, char** argv) {
  psc::PrintTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  psc::bench_util::EmitMetricsRecord("bench_hitting_set");
  return 0;
}
