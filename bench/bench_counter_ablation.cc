// E6 — ablation of the signature-grouping model counter.
//
// The paper computes N_sol(Γ) "by generating all the possible global
// databases (in exponential time)". We implement that literally (the
// LinearSystem 2^N enumeration) and compare it with the signature counter,
// which exploits the exchangeability of same-signature facts. Both must
// return identical counts; the speedup is the point of the ablation.

#include <cstdio>

#include "bench_util.h"
#include "benchmark/benchmark.h"
#include "psc/counting/linear_system.h"
#include "psc/counting/dp_counter.h"
#include "psc/counting/model_counter.h"
#include "psc/util/combinatorics.h"

namespace psc {
namespace {

std::vector<Value> IntDomain(int64_t n) {
  std::vector<Value> domain;
  for (int64_t i = 0; i < n; ++i) domain.push_back(Value(i));
  return domain;
}

SourceCollection OverlappingCollection() {
  Relation v1 = {{Value(int64_t{0})}, {Value(int64_t{1})}};
  Relation v2 = {{Value(int64_t{1})}, {Value(int64_t{2})}};
  auto s1 = SourceDescriptor::Create("S1", ConjunctiveQuery::Identity("R", 1),
                                     v1, Rational(1, 2), Rational(1, 2));
  auto s2 = SourceDescriptor::Create("S2", ConjunctiveQuery::Identity("R", 1),
                                     v2, Rational(1, 2), Rational(1, 2));
  return *SourceCollection::Create({*s1, *s2});
}

void PrintTable() {
  std::printf(
      "=== E6: signature counter vs 2^N enumeration (identical counts) "
      "===\n");
  std::printf("%4s | %16s | %12s | %12s | %14s | %10s\n", "N",
              "|poss(S)|", "shapes ms", "dp ms", "2^N ms", "speedup");
  const SourceCollection collection = OverlappingCollection();
  for (const int64_t n : {4, 8, 12, 16, 20, 22}) {
    auto instance = IdentityInstance::Create(collection, IntDomain(n));
    if (!instance.ok()) continue;

    bench_util::Stopwatch stopwatch;
    BinomialTable binomials;
    SignatureCounter counter(&*instance, &binomials);
    auto outcome = counter.Count();
    const double counter_ms = stopwatch.ElapsedMillis();

    stopwatch.Reset();
    DpCounter dp(&*instance);
    auto dp_outcome = dp.Count();
    const double dp_ms = stopwatch.ElapsedMillis();

    stopwatch.Reset();
    auto system = LinearSystem::FromIdentityInstance(*instance);
    auto brute = system->CountSolutionsBruteForce(/*max_vars=*/24);
    const double brute_ms = stopwatch.ElapsedMillis();

    if (!outcome.ok() || !dp_outcome.ok() || !brute.ok()) continue;
    const bool match = outcome->world_count == *brute &&
                       dp_outcome->world_count == *brute;
    std::printf("%4lld | %16s | %12.3f | %12.3f | %14.3f | %9.1fx%s\n",
                static_cast<long long>(n),
                outcome->world_count.ToString().c_str(), counter_ms, dp_ms,
                brute_ms, brute_ms / std::max(counter_ms, 1e-6),
                match ? "" : "  !! MISMATCH");
  }
  // Beyond the 2^N horizon the exact counters keep going.
  for (const int64_t n : {64, 256, 1024, 8192}) {
    auto instance = IdentityInstance::Create(collection, IntDomain(n));
    if (!instance.ok()) continue;
    bench_util::Stopwatch stopwatch;
    BinomialTable binomials;
    SignatureCounter counter(&*instance, &binomials);
    auto outcome = counter.Count();
    const double counter_ms = stopwatch.ElapsedMillis();
    stopwatch.Reset();
    DpCounter dp(&*instance);
    auto dp_outcome = dp.Count();
    const double dp_ms = stopwatch.ElapsedMillis();
    if (!outcome.ok() || !dp_outcome.ok()) continue;
    const bool match = outcome->world_count == dp_outcome->world_count;
    std::printf("%4lld | %16s | %12.3f | %12.3f | %14s | %10s%s\n",
                static_cast<long long>(n),
                outcome->world_count.ToString().c_str(), counter_ms, dp_ms,
                "2^N n/a", "-", match ? "" : "  !! MISMATCH");
  }
  std::printf(
      "(shape: identical counts from three algorithms; the 2^N baseline "
      "doubles per fact, shape enumeration grows with the largest group, "
      "and the aggregate-sum DP stays polynomial in the domain size.)\n\n");
}

void BM_SignatureCounter(benchmark::State& state) {
  const SourceCollection collection = OverlappingCollection();
  auto instance =
      IdentityInstance::Create(collection, IntDomain(state.range(0)));
  for (auto _ : state) {
    BinomialTable binomials;
    SignatureCounter counter(&*instance, &binomials);
    auto outcome = counter.Count();
    benchmark::DoNotOptimize(outcome);
  }
}
BENCHMARK(BM_SignatureCounter)->Arg(8)->Arg(64)->Arg(1024);

void BM_DpCounter(benchmark::State& state) {
  const SourceCollection collection = OverlappingCollection();
  auto instance =
      IdentityInstance::Create(collection, IntDomain(state.range(0)));
  for (auto _ : state) {
    DpCounter counter(&*instance);
    auto outcome = counter.Count();
    benchmark::DoNotOptimize(outcome);
  }
}
BENCHMARK(BM_DpCounter)->Arg(8)->Arg(64)->Arg(1024);

void BM_BruteForceCount(benchmark::State& state) {
  const SourceCollection collection = OverlappingCollection();
  auto instance =
      IdentityInstance::Create(collection, IntDomain(state.range(0)));
  auto system = LinearSystem::FromIdentityInstance(*instance);
  for (auto _ : state) {
    auto count = system->CountSolutionsBruteForce(/*max_vars=*/24);
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_BruteForceCount)->Arg(8)->Arg(16)->Arg(20);

}  // namespace
}  // namespace psc

int main(int argc, char** argv) {
  psc::PrintTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  psc::bench_util::EmitMetricsRecord("bench_counter_ablation");
  return 0;
}
