// E4 — Theorem 4.1: poss(S) = ⋃_U rep(𝒯^U(S)).
//
// Charts (a) the size of the template family |𝒰| = ∏ᵢ Σ_{j≥⌈sᵢkᵢ⌉} C(kᵢ,j)
// as soundness bounds drop (lower s → more allowable combinations), and
// (b) the cost and correctness of deciding membership through the family
// versus the direct measure-based test, over every database of a small
// universe.

#include <cstdio>

#include "bench_util.h"
#include "benchmark/benchmark.h"
#include "psc/tableau/template_builder.h"
#include "psc/relational/database.h"

namespace psc {
namespace {

SourceCollection CollectionWithBounds(const Rational& s) {
  Relation v1 = {{Value(int64_t{0})}, {Value(int64_t{1})},
                 {Value(int64_t{2})}};
  Relation v2 = {{Value(int64_t{2})}, {Value(int64_t{3})}};
  auto s1 = SourceDescriptor::Create("S1", ConjunctiveQuery::Identity("R", 1),
                                     v1, Rational(1, 2), s);
  auto s2 = SourceDescriptor::Create("S2", ConjunctiveQuery::Identity("R", 1),
                                     v2, Rational(1, 2), s);
  auto collection = SourceCollection::Create({*s1, *s2});
  return *collection;
}

void PrintTable() {
  std::printf(
      "=== E4: Theorem 4.1 — template family size and membership checking "
      "===\n");
  std::printf("%10s | %6s | %14s | %14s | %10s\n", "soundness", "|U|",
              "family ms/db", "direct ms/db", "agreement");
  const std::vector<Value> domain = {Value(int64_t{0}), Value(int64_t{1}),
                                     Value(int64_t{2}), Value(int64_t{3}),
                                     Value(int64_t{4})};
  for (const auto& [label, s] :
       std::vector<std::pair<const char*, Rational>>{{"1", Rational::One()},
                                                     {"3/4", {3, 4}},
                                                     {"1/2", {1, 2}},
                                                     {"1/4", {1, 4}},
                                                     {"0", Rational::Zero()}}) {
    const SourceCollection collection = CollectionWithBounds(s);
    TemplateBuilder builder(&collection);
    const BigInt family_size = builder.CountAllowableCombinations();

    auto universe =
        EnumerateFactUniverse(collection.schema(), domain, 1 << 10);
    int agree = 0;
    int total = 0;
    double family_ms = 0;
    double direct_ms = 0;
    const uint64_t limit = uint64_t{1} << universe->size();
    for (uint64_t mask = 0; mask < limit; ++mask) {
      Database db;
      for (size_t j = 0; j < universe->size(); ++j) {
        if ((mask >> j) & 1) db.AddFact((*universe)[j]);
      }
      bench_util::Stopwatch stopwatch;
      auto via_family = builder.FamilyContains(db);
      family_ms += stopwatch.ElapsedMillis();
      stopwatch.Reset();
      auto direct = collection.IsPossibleWorld(db);
      direct_ms += stopwatch.ElapsedMillis();
      if (via_family.ok() && direct.ok()) {
        ++total;
        if (*via_family == *direct) ++agree;
      }
    }
    std::printf("%10s | %6s | %14.4f | %14.4f | %6d/%d\n", label,
                family_size.ToString().c_str(), family_ms / total,
                direct_ms / total, agree, total);
  }
  std::printf(
      "(shape: |U| grows as soundness drops — every subset above the "
      "threshold becomes allowable — while agreement stays perfect.)\n\n");
}

void BM_FamilyContains(benchmark::State& state) {
  const SourceCollection collection =
      CollectionWithBounds(Rational(1, static_cast<int64_t>(state.range(0))));
  TemplateBuilder builder(&collection);
  Database db;
  db.AddFact("R", {Value(int64_t{0})});
  db.AddFact("R", {Value(int64_t{2})});
  db.AddFact("R", {Value(int64_t{3})});
  for (auto _ : state) {
    auto contained = builder.FamilyContains(db);
    benchmark::DoNotOptimize(contained);
  }
}
BENCHMARK(BM_FamilyContains)->Arg(1)->Arg(2)->Arg(4);

void BM_TemplateBuild(benchmark::State& state) {
  const SourceCollection collection = CollectionWithBounds(Rational(1, 2));
  TemplateBuilder builder(&collection);
  Combination combination = {
      {{Value(int64_t{0})}, {Value(int64_t{1})}},
      {{Value(int64_t{2})}},
  };
  for (auto _ : state) {
    auto built = builder.Build(combination);
    benchmark::DoNotOptimize(built);
  }
}
BENCHMARK(BM_TemplateBuild);

}  // namespace
}  // namespace psc

int main(int argc, char** argv) {
  psc::PrintTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  psc::bench_util::EmitMetricsRecord("bench_templates");
  return 0;
}
