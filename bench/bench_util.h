#ifndef PSC_BENCH_BENCH_UTIL_H_
#define PSC_BENCH_BENCH_UTIL_H_

/// \file
/// Shared helpers for the bench_* drivers: a monotonic stopwatch (the
/// benches used to hand-roll high_resolution_clock arithmetic, which is
/// not guaranteed monotonic) and an end-of-run structured metrics record.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "psc/obs/report.h"
#include "psc/util/string_util.h"

namespace psc {
namespace bench_util {

/// Monotonic wall-clock stopwatch.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}

  void Reset() { start_ = std::chrono::steady_clock::now(); }

  double ElapsedMillis() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

  double ElapsedSeconds() const { return ElapsedMillis() / 1000.0; }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Prints one JSON line `{"bench":...,"metrics":<run report>}` so harnesses
/// can scrape structured counters from bench output. When the environment
/// variable PSC_BENCH_METRICS_OUT names a file, the record is also written
/// there.
inline void EmitMetricsRecord(const char* bench_name) {
  const std::string line =
      StrCat("{\"bench\":\"", obs::JsonEscape(bench_name),
             "\",\"metrics\":", obs::RunReport::Capture().ToJson(), "}");
  std::printf("%s\n", line.c_str());
  const char* path = std::getenv("PSC_BENCH_METRICS_OUT");
  if (path != nullptr && path[0] != '\0') {
    std::FILE* out = std::fopen(path, "w");
    if (out != nullptr) {
      std::fprintf(out, "%s\n", line.c_str());
      std::fclose(out);
    }
  }
}

}  // namespace bench_util
}  // namespace psc

#endif  // PSC_BENCH_BENCH_UTIL_H_
