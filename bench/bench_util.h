#ifndef PSC_BENCH_BENCH_UTIL_H_
#define PSC_BENCH_BENCH_UTIL_H_

/// \file
/// Shared helpers for the bench_* drivers: a monotonic stopwatch (the
/// benches used to hand-roll high_resolution_clock arithmetic, which is
/// not guaranteed monotonic), percentile math for latency distributions,
/// and an end-of-run structured metrics record.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "psc/obs/report.h"
#include "psc/util/string_util.h"

namespace psc {
namespace bench_util {

/// \name Percentiles
///
/// One shared definition so every bench reports the same statistic:
/// linear interpolation between closest ranks (the "exclusive" R-7 /
/// numpy default). Deterministic for a given sample set — the input is
/// copied and sorted internally, so callers may pass samples in
/// completion order.
/// @{

/// Interpolated `q`-th percentile (q in [0, 100]) of `sorted` samples,
/// which MUST already be ascending. 0 on empty input.
inline double PercentileOfSorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  if (sorted.size() == 1) return sorted.front();
  const double rank = (q / 100.0) * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

/// p50/p95/p99 plus min/max/mean of a latency sample set, in the input's
/// unit.
struct LatencySummary {
  size_t count = 0;
  double min = 0;
  double max = 0;
  double mean = 0;
  double p50 = 0;
  double p95 = 0;
  double p99 = 0;
};

inline LatencySummary Summarize(std::vector<double> samples) {
  LatencySummary summary;
  if (samples.empty()) return summary;
  std::sort(samples.begin(), samples.end());
  summary.count = samples.size();
  summary.min = samples.front();
  summary.max = samples.back();
  double total = 0;
  for (const double sample : samples) total += sample;
  summary.mean = total / static_cast<double>(samples.size());
  summary.p50 = PercentileOfSorted(samples, 50.0);
  summary.p95 = PercentileOfSorted(samples, 95.0);
  summary.p99 = PercentileOfSorted(samples, 99.0);
  return summary;
}

/// @}

/// Monotonic wall-clock stopwatch.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}

  void Reset() { start_ = std::chrono::steady_clock::now(); }

  double ElapsedMillis() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

  double ElapsedSeconds() const { return ElapsedMillis() / 1000.0; }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Prints one JSON line `{"bench":...,"metrics":<run report>}` so harnesses
/// can scrape structured counters from bench output. When the environment
/// variable PSC_BENCH_METRICS_OUT names a file, the record is also written
/// there.
inline void EmitMetricsRecord(const char* bench_name) {
  const std::string line =
      StrCat("{\"bench\":\"", obs::JsonEscape(bench_name),
             "\",\"metrics\":", obs::RunReport::Capture().ToJson(), "}");
  std::printf("%s\n", line.c_str());
  const char* path = std::getenv("PSC_BENCH_METRICS_OUT");
  if (path != nullptr && path[0] != '\0') {
    std::FILE* out = std::fopen(path, "w");
    if (out != nullptr) {
      std::fprintf(out, "%s\n", line.c_str());
      std::fclose(out);
    }
  }
}

}  // namespace bench_util
}  // namespace psc

#endif  // PSC_BENCH_BENCH_UTIL_H_
