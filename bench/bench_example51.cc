// E1 — Example 5.1 closed forms (the paper's only worked-out numbers).
//
// Collection: S1 = ⟨Id_R, {a,b}, 1/2, 1/2⟩, S2 = ⟨Id_R, {b,c}, 1/2, 1/2⟩
// over dom = {a,b,c,d₁,…,d_m}.
//
// Paper's stated confidences:   b: (2m+2)/(2m+3), a=c: (m+2)/(2m+3),
//                               dᵢ: 2/(2m+3).
// Re-derived (and triple-checked against independent oracles in the test
// suite):                       b: (2m+4)/(2m+5), a=c: (m+3)/(2m+5),
//                               dᵢ: 2/(2m+5)
// — same limits (1, 1/2, 0); the paper's count misses the worlds {a,b}
// and {b,c}. The table prints both series; "measured" must equal the
// re-derived column exactly.

#include <cstdio>

#include "bench_util.h"
#include "benchmark/benchmark.h"
#include "psc/counting/confidence.h"
#include "psc/source/source_collection.h"

namespace psc {
namespace {

SourceCollection Example51Collection() {
  Relation v1 = {{Value("a")}, {Value("b")}};
  Relation v2 = {{Value("b")}, {Value("c")}};
  auto s1 = SourceDescriptor::Create("S1", ConjunctiveQuery::Identity("R", 1),
                                     v1, Rational(1, 2), Rational(1, 2));
  auto s2 = SourceDescriptor::Create("S2", ConjunctiveQuery::Identity("R", 1),
                                     v2, Rational(1, 2), Rational(1, 2));
  auto collection = SourceCollection::Create({*s1, *s2});
  return *collection;
}

std::vector<Value> Example51Domain(int64_t m) {
  std::vector<Value> domain = {Value("a"), Value("b"), Value("c")};
  for (int64_t i = 1; i <= m; ++i) {
    domain.push_back(Value("d" + std::to_string(i)));
  }
  return domain;
}

Result<ConfidenceTable> Compute(int64_t m) {
  PSC_ASSIGN_OR_RETURN(
      const IdentityInstance instance,
      IdentityInstance::Create(Example51Collection(), Example51Domain(m)));
  return ComputeBaseFactConfidences(instance);
}

void PrintTable() {
  std::printf(
      "=== E1: Example 5.1 — confidence of base facts vs domain size m "
      "===\n");
  std::printf(
      "%8s | %22s | %22s | %22s | %10s\n", "m",
      "conf(b) meas/derived/paper", "conf(a) meas/derived/paper",
      "conf(d) meas/derived/paper", "|poss(S)|");
  for (const int64_t m : {0, 1, 2, 4, 8, 16, 64, 256, 1024, 4096}) {
    auto table = Compute(m);
    if (!table.ok()) {
      std::printf("m=%lld: %s\n", static_cast<long long>(m),
                  table.status().ToString().c_str());
      continue;
    }
    const double denom_derived = 2.0 * m + 5;
    const double denom_paper = 2.0 * m + 3;
    auto conf = [&](const char* name) {
      auto c = table->ConfidenceOf({Value(name)});
      return c.ok() ? *c : -1.0;
    };
    const double d_conf = m > 0 ? conf("d1") : 2.0 / denom_derived;
    std::printf(
        "%8lld | %.4f/%.4f/%.4f | %.4f/%.4f/%.4f | %.4f/%.4f/%.4f | %s\n",
        static_cast<long long>(m),
        conf("b"), (2 * m + 4) / denom_derived, (2 * m + 2) / denom_paper,
        conf("a"), (m + 3) / denom_derived, (m + 2) / denom_paper,
        d_conf, 2 / denom_derived, 2 / denom_paper,
        table->world_count.ToString().c_str());
  }
  std::printf(
      "(shape: shared fact b -> 1, single-source a,c -> 1/2, unseen d -> 0; "
      "'measured' matches 'derived' exactly, paper's count is off by two "
      "worlds.)\n\n");
}

void BM_Example51Confidences(benchmark::State& state) {
  const int64_t m = state.range(0);
  for (auto _ : state) {
    auto table = Compute(m);
    if (!table.ok()) state.SkipWithError("counting failed");
    benchmark::DoNotOptimize(table);
  }
  state.counters["m"] = static_cast<double>(m);
}
BENCHMARK(BM_Example51Confidences)->Arg(1)->Arg(16)->Arg(256)->Arg(1024);

}  // namespace
}  // namespace psc

int main(int argc, char** argv) {
  psc::PrintTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  psc::bench_util::EmitMetricsRecord("bench_example51");
  return 0;
}
