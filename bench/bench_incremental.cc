// Streaming-update workloads for the incremental delta engine
// (psc/delta/): how much cheaper is maintaining warm state through
// Database::ApplyDelta / delta::IncrementalSystem than the pre-delta
// full-recompute path?
//
// Two layers are measured, each against its own from-scratch baseline and
// each cross-checked for bit-identical answers:
//
//  * index maintenance — a mirror of 10^5..10^6 edge tuples drifts under
//    trickle (a handful of tuples) and bursty (thousands of tuples)
//    batches while selective two-hop probes run between batches. The
//    incremental path patches the cached hash indexes in place
//    (eval_index.h); the baseline applies the same mutations but then
//    wholesale-invalidates the index cache (Database::InvalidateIndexCache,
//    exactly the pre-delta behaviour), forcing an O(N) rebuild on the next
//    probe. Trickle target: >= 10x.
//
//  * consistency maintenance — a source collection drifts (mirrors
//    catching up with the witness world / evicting junk) while
//    consistency is re-checked after every batch. The incremental path
//    revalidates the cached witness against the dirty sources only
//    (delta::IncrementalSystem); the baseline rebuilds the system and runs
//    the full strategy pipeline every time.
//
// `--smoke` runs a seconds-scale subset for CI (tools/ci_matrix.sh) that
// still exercises every delta.* counter (patches, threshold rebuilds,
// skipped combinations). The final line is the standard structured
// metrics record (bench_util.h) scraped by tools/check_metrics_schema.py.

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "benchmark/benchmark.h"
#include "psc/delta/incremental.h"
#include "psc/obs/metrics.h"
#include "psc/parser/parser.h"
#include "psc/relational/conjunctive_query.h"
#include "psc/relational/database.h"
#include "psc/source/source_collection.h"
#include "psc/util/random.h"
#include "psc/util/string_util.h"

namespace psc {
namespace {

int g_failures = 0;

void Check(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "!! MISMATCH: %s\n", what);
    ++g_failures;
  }
}

ConjunctiveQuery MustParseQuery(const std::string& text) {
  auto query = ParseQuery(text);
  if (!query.ok()) {
    std::fprintf(stderr, "bad bench query %s: %s\n", text.c_str(),
                 query.status().ToString().c_str());
    std::abort();
  }
  return *std::move(query);
}

// ---------------------------------------------------------------------------
// Index-maintenance workload
// ---------------------------------------------------------------------------

/// A random edge relation E with `edges` tuples over `domain` nodes,
/// mirrored into `mirror` so the delta generator can retract real edges.
Database MakeGraphDb(uint64_t seed, int64_t edges, int64_t domain,
                     std::vector<Tuple>* mirror) {
  Rng rng(seed);
  Database db;
  while (db.size() < static_cast<size_t>(edges)) {
    Tuple edge{Value(rng.UniformInt(0, domain - 1)),
               Value(rng.UniformInt(0, domain - 1))};
    if (db.AddFact("E", edge)) mirror->push_back(std::move(edge));
  }
  return db;
}

/// Pre-generates `steps` deltas against the evolving mirror: per step,
/// `inserts` fresh edges and `retracts` existing ones. Both timed runs
/// replay exactly this stream.
std::vector<DatabaseDelta> MakeDeltaStream(uint64_t seed, int64_t domain,
                                           int steps, int inserts,
                                           int retracts,
                                           std::vector<Tuple>* mirror) {
  Rng rng(seed);
  std::vector<DatabaseDelta> stream;
  stream.reserve(steps);
  for (int s = 0; s < steps; ++s) {
    DatabaseDelta delta;
    for (int i = 0; i < inserts; ++i) {
      Tuple edge{Value(rng.UniformInt(0, domain - 1)),
                 Value(rng.UniformInt(0, domain - 1))};
      mirror->push_back(edge);
      delta.Insert("E", std::move(edge));
    }
    for (int r = 0; r < retracts && !mirror->empty(); ++r) {
      const size_t pick = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(mirror->size()) - 1));
      delta.Retract("E", (*mirror)[pick]);
      (*mirror)[pick] = mirror->back();
      mirror->pop_back();
    }
    stream.push_back(std::move(delta));
  }
  return stream;
}

/// Replays the delta stream against `db`, running the two-hop point probes
/// after every batch. `wholesale` reproduces the pre-delta invalidation
/// (drop every cached index; next probe rebuilds O(N)). Returns elapsed ms
/// and appends a per-probe result signature for the cross-check.
double RunStream(Database db, const ConjunctiveQuery& probe,
                 const std::vector<DatabaseDelta>& stream,
                 const std::vector<int64_t>& probe_nodes, bool wholesale,
                 std::vector<uint64_t>* signature) {
  // Warm the plan cache and indexes outside the timed region: both paths
  // start from the same steady state a long-lived service would be in.
  Valuation initial;
  uint64_t sink = 0;
  for (const int64_t node : probe_nodes) {
    initial["x"] = Value(node);
    (void)probe.ForEachValuation(db, initial, [&](const Valuation&) {
      ++sink;
      return true;
    });
  }
  bench_util::Stopwatch stopwatch;
  for (const DatabaseDelta& delta : stream) {
    db.ApplyDelta(delta);
    if (wholesale) db.InvalidateIndexCache();
    for (const int64_t node : probe_nodes) {
      initial["x"] = Value(node);
      uint64_t hash = 1469598103934665603ULL;
      auto each = probe.ForEachValuation(db, initial, [&](const Valuation& v) {
        // Order-independent signature: sum of per-tuple hashes (the
        // enumeration order is engine- and path-dependent by contract).
        const auto z = v.find("z");
        hash += static_cast<uint64_t>(z->second.AsInt()) * 1099511628211ULL + 1;
        return true;
      });
      if (!each.ok()) {
        std::fprintf(stderr, "probe failed: %s\n",
                     each.status().ToString().c_str());
        std::abort();
      }
      signature->push_back(hash);
    }
  }
  const double elapsed = stopwatch.ElapsedMillis();
  benchmark::DoNotOptimize(sink);
  return elapsed;
}

struct StreamConfig {
  const char* label;
  int64_t edges;
  int64_t domain;
  int steps;
  int inserts;
  int retracts;
  int probes;
};

double RunIndexSweep(bool smoke) {
  const std::vector<StreamConfig> configs =
      smoke ? std::vector<StreamConfig>{
                  {"trickle", 20000, 4000, 5, 8, 4, 8},
                  // Burst big enough to cross the churn threshold, so the
                  // rebuild fallback (delta.index.rebuilds) is exercised.
                  {"bursty-rebuild", 2000, 400, 3, 600, 400, 8},
              }
            : std::vector<StreamConfig>{
                  {"trickle", 100000, 20000, 40, 8, 4, 16},
                  {"bursty", 100000, 20000, 10, 4096, 2048, 16},
                  {"bursty-rebuild", 100000, 20000, 6, 16384, 16384, 16},
                  {"trickle", 1000000, 200000, 12, 8, 4, 16},
                  {"bursty", 1000000, 200000, 5, 16384, 8192, 16},
              };
  const ConjunctiveQuery probe = MustParseQuery("V(z) <- E(x, y), E(y, z)");

  std::printf("%16s %9s %7s %6s %7s %7s | %12s %12s %9s | %s\n", "workload",
              "edges", "domain", "steps", "batch+", "batch-", "full ms",
              "incr ms", "speedup", "check");
  double trickle_speedup = 0;
  for (const StreamConfig& config : configs) {
    std::vector<Tuple> mirror;
    const Database db =
        MakeGraphDb(/*seed=*/17, config.edges, config.domain, &mirror);
    std::vector<Tuple> mirror_copy = mirror;
    const std::vector<DatabaseDelta> stream =
        MakeDeltaStream(/*seed=*/23, config.domain, config.steps,
                        config.inserts, config.retracts, &mirror_copy);
    Rng probe_rng(41);
    std::vector<int64_t> probe_nodes;
    probe_nodes.reserve(config.probes);
    for (int i = 0; i < config.probes; ++i) {
      probe_nodes.push_back(probe_rng.UniformInt(0, config.domain - 1));
    }

    std::vector<uint64_t> full_sig, incr_sig;
    const double full_ms = RunStream(db, probe, stream, probe_nodes,
                                     /*wholesale=*/true, &full_sig);
    const double incr_ms = RunStream(db, probe, stream, probe_nodes,
                                     /*wholesale=*/false, &incr_sig);
    Check(full_sig == incr_sig, "incremental probes differ from recompute");
    const double speedup = full_ms / std::max(incr_ms, 1e-6);
    if (std::strcmp(config.label, "trickle") == 0 &&
        config.edges >= 100000 && trickle_speedup == 0) {
      trickle_speedup = speedup;  // headline: first >=1e5 trickle config
    }
    std::printf(
        "%16s %9lld %7lld %6d %7d %7d | %12.2f %12.2f %8.1fx | %s\n",
        config.label, static_cast<long long>(config.edges),
        static_cast<long long>(config.domain), config.steps, config.inserts,
        config.retracts, full_ms, incr_ms, speedup,
        full_sig == incr_sig ? "ok" : "!! MISMATCH");
  }
  return trickle_speedup;
}

// ---------------------------------------------------------------------------
// Consistency-maintenance workload
// ---------------------------------------------------------------------------

/// An identity-view mirror federation: `sources` mirrors of one relation R
/// with overlapping random extensions, sound/complete enough to be
/// consistent but with junk tuples to spare.
Result<SourceCollection> MakeMirrorCollection(uint64_t seed, int sources,
                                              int extension) {
  Rng rng(seed);
  std::vector<SourceDescriptor> descriptors;
  for (int i = 0; i < sources; ++i) {
    Relation facts;
    while (facts.size() < static_cast<size_t>(extension)) {
      facts.insert({Value(rng.UniformInt(0, 4 * extension))});
    }
    PSC_ASSIGN_OR_RETURN(
        SourceDescriptor descriptor,
        SourceDescriptor::Create(
            StrCat("M", i), MustParseQuery(StrCat("V", i, "(x) <- R(x)")),
            std::move(facts), Rational(1, 8), Rational(1, 2)));
    descriptors.push_back(std::move(descriptor));
  }
  return SourceCollection::Create(std::move(descriptors));
}

/// A general-view (non-identity) collection whose full check must descend
/// the canonical-freeze combination search. P0 projects R with extension
/// {1..2k} and soundness 1/2; P1 shares relation R with extension {1..k}
/// and completeness 1, which forces π_x(R) ⊆ {1..k} in every possible
/// world. The enumerator's largest-first combinations (u₀ touching k+1..2k)
/// all fail, so each full check tries many combinations before landing on
/// u₀ = {1..k} — and P0's upper half is provably junk for eviction deltas.
Result<SourceCollection> MakeProjectionCollection(int k) {
  Relation wide, narrow;
  for (int i = 1; i <= 2 * k; ++i) wide.insert({Value(int64_t{i})});
  for (int i = 1; i <= k; ++i) narrow.insert({Value(int64_t{i})});
  std::vector<SourceDescriptor> descriptors;
  PSC_ASSIGN_OR_RETURN(
      SourceDescriptor wide_source,
      SourceDescriptor::Create("P0", MustParseQuery("W0(x) <- R(x, y)"),
                               std::move(wide), Rational(0), Rational(1, 2)));
  PSC_ASSIGN_OR_RETURN(
      SourceDescriptor narrow_source,
      SourceDescriptor::Create("P1", MustParseQuery("W1(x) <- R(x, y)"),
                               std::move(narrow), Rational(1), Rational(0)));
  descriptors.push_back(std::move(wide_source));
  descriptors.push_back(std::move(narrow_source));
  return SourceCollection::Create(std::move(descriptors));
}

/// Times `stream` through a single IncrementalSystem (revalidate path)
/// vs a fresh full check per batch, cross-checking the verdicts.
void RunConsistencyStream(const char* label,
                          const SourceCollection& collection,
                          const std::vector<CollectionDelta>& stream) {
  QuerySystem::Options options;
  options.threads = 1;

  auto incremental = delta::IncrementalSystem::Create(collection, options);
  if (!incremental.ok()) {
    std::fprintf(stderr, "create failed: %s\n",
                 incremental.status().ToString().c_str());
    std::abort();
  }
  // Prime the witness cache; the baseline pays this per step, the
  // incremental path once.
  auto primed = incremental->CheckConsistency();
  if (!primed.ok()) std::abort();

  // Baseline: mutate a scratch collection and re-check from scratch.
  SourceCollection scratch = collection;
  std::vector<ConsistencyVerdict> full_verdicts;
  bench_util::Stopwatch full_watch;
  for (const CollectionDelta& delta : stream) {
    if (!scratch.ApplyDelta(delta).ok()) std::abort();
    auto system = QuerySystem::Create(scratch, options);
    if (!system.ok()) std::abort();
    auto report = system->CheckConsistency();
    if (!report.ok()) std::abort();
    full_verdicts.push_back(report->verdict);
  }
  const double full_ms = full_watch.ElapsedMillis();

  std::vector<ConsistencyVerdict> incr_verdicts;
  uint64_t revalidations = 0;
  bench_util::Stopwatch incr_watch;
  for (const CollectionDelta& delta : stream) {
    if (!incremental->ApplyDelta(delta).ok()) std::abort();
    auto report = incremental->CheckConsistency();
    if (!report.ok()) std::abort();
    incr_verdicts.push_back(report->verdict);
    if (report->method != "none" && report->method.rfind("delta-", 0) == 0) {
      ++revalidations;
    }
  }
  const double incr_ms = incr_watch.ElapsedMillis();

  Check(full_verdicts == incr_verdicts,
        "incremental verdicts differ from full re-check");
  std::printf(
      "%16s %9zu %7s %6zu %7s %7s | %12.2f %12.2f %8.1fx | %s (%" PRIu64
      "/%zu warm)\n",
      label, collection.TotalExtensionSize(), "-", stream.size(), "-", "-",
      full_ms, incr_ms, full_ms / std::max(incr_ms, 1e-6),
      full_verdicts == incr_verdicts ? "ok" : "!! MISMATCH", revalidations,
      stream.size());
}

void RunConsistencySweep(bool smoke) {
  // Mirror drift toward the witness: sources catch up with facts the
  // cached witness world already contains, so revalidation stays cheap
  // and every batch dirties one source.
  {
    auto collection =
        MakeMirrorCollection(/*seed=*/7, /*sources=*/3,
                             /*extension=*/smoke ? 200 : 2000);
    if (!collection.ok()) std::abort();
    auto probe = QuerySystem::Create(*collection, {});
    if (!probe.ok()) std::abort();
    auto report = probe->CheckConsistency();
    if (!report.ok() || !report->witness.has_value()) std::abort();
    const Relation& truth = report->witness->GetRelation("R");
    std::vector<CollectionDelta> stream;
    const int steps = smoke ? 4 : 24;
    auto tuple_it = truth.begin();
    for (int s = 0; s < steps && tuple_it != truth.end(); ++s) {
      const std::string source = StrCat("M", s % collection->size());
      CollectionDelta delta;
      for (int i = 0; i < 2 && tuple_it != truth.end(); ++tuple_it) {
        const size_t index = *collection->IndexOf(source);
        if (collection->source(index).extension().count(*tuple_it) > 0) {
          continue;  // already mirrored; pick another fact
        }
        delta.Insert(source, *tuple_it);
        ++i;
      }
      if (!delta.empty()) stream.push_back(std::move(delta));
    }
    RunConsistencyStream("mirror-drift", *collection, stream);
  }

  // Junk eviction on a general-view collection: retracting unsound tuples
  // keeps the witness valid while the baseline re-runs the canonical
  // freeze search (combinations and templates) every batch.
  {
    auto collection = MakeProjectionCollection(smoke ? 3 : 4);
    if (!collection.ok()) std::abort();
    auto probe = QuerySystem::Create(*collection, {});
    if (!probe.ok()) std::abort();
    auto report = probe->CheckConsistency();
    if (!report.ok() || !report->witness.has_value()) std::abort();
    std::vector<CollectionDelta> stream;
    // Evict one non-witnessed (junk) tuple per source per batch, staying
    // above the soundness threshold.
    std::vector<std::vector<Tuple>> junk(collection->size());
    for (size_t i = 0; i < collection->size(); ++i) {
      const SourceDescriptor& source = collection->source(i);
      auto intended = source.view().Evaluate(*report->witness);
      if (!intended.ok()) std::abort();
      size_t can_drop =
          source.extension_size() -
          static_cast<size_t>(source.MinSoundFacts());
      for (const Tuple& tuple : source.extension()) {
        if (can_drop == 0) break;
        if (intended->count(tuple) == 0) {
          junk[i].push_back(tuple);
          --can_drop;
        }
      }
    }
    for (size_t step = 0;; ++step) {
      CollectionDelta delta;
      for (size_t i = 0; i < collection->size(); ++i) {
        if (step < junk[i].size()) {
          delta.Retract(collection->source(i).name(), junk[i][step]);
        }
      }
      if (delta.empty()) break;
      stream.push_back(std::move(delta));
    }
    RunConsistencyStream("junk-eviction", *collection, stream);
  }
}

// ---------------------------------------------------------------------------
// google-benchmark section (full runs only)
// ---------------------------------------------------------------------------

void BM_DeltaApply(benchmark::State& state) {
  const bool wholesale = state.range(0) != 0;
  std::vector<Tuple> mirror;
  Database db = MakeGraphDb(/*seed=*/17, /*edges=*/100000, /*domain=*/20000,
                            &mirror);
  const ConjunctiveQuery probe = MustParseQuery("V(z) <- E(x, y), E(y, z)");
  std::vector<Tuple> mirror_copy = mirror;
  const std::vector<DatabaseDelta> stream = MakeDeltaStream(
      /*seed=*/23, /*domain=*/20000, /*steps=*/512, /*inserts=*/8,
      /*retracts=*/4, &mirror_copy);
  size_t next = 0;
  Valuation initial;
  initial["x"] = Value(int64_t{7});
  uint64_t sink = 0;
  (void)probe.ForEachValuation(db, initial, [&](const Valuation&) {
    ++sink;
    return true;
  });
  for (auto _ : state) {
    db.ApplyDelta(stream[next]);
    next = (next + 1) % stream.size();
    if (wholesale) db.InvalidateIndexCache();
    (void)probe.ForEachValuation(db, initial, [&](const Valuation&) {
      ++sink;
      return true;
    });
    benchmark::DoNotOptimize(sink);
  }
}
BENCHMARK(BM_DeltaApply)->ArgNames({"wholesale"})->Arg(0)->Arg(1);

}  // namespace
}  // namespace psc

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  std::printf("=== incremental delta engine: streaming-update sweep%s ===\n",
              smoke ? " (smoke)" : "");
  const double trickle_speedup = psc::RunIndexSweep(smoke);
  psc::RunConsistencySweep(smoke);
  if (!smoke) {
    if (trickle_speedup < 10.0) {
      std::fprintf(stderr,
                   "!! BELOW TARGET: trickle speedup %.1fx < 10x at >=1e5 "
                   "tuples\n",
                   trickle_speedup);
      ++psc::g_failures;
    }
    PSC_OBS_GAUGE_SET(
        "delta.bench.trickle_speedup_x100",
        static_cast<int64_t>(trickle_speedup * 100.0));
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
  }
  psc::bench_util::EmitMetricsRecord("bench_incremental");
  if (psc::g_failures > 0) {
    std::fprintf(stderr, "%d cross-check failures\n", psc::g_failures);
    return 1;
  }
  return 0;
}
