// Parallel-runtime scaling sweep: the three solver hot paths wired onto
// psc::exec — the canonical-freeze consistency search, the signature
// counter and Monte-Carlo answering — measured at 1/2/4/8 worker threads.
//
// Every configuration must return the same verdict / count / estimate as
// the single-threaded run (the runtime's determinism contract); the table
// prints an explicit check column so a scheduling regression is visible
// as "!! MISMATCH" rather than a silent wrong answer. Speedups depend on
// the machine's core count — on a single-core host the sweep degenerates
// to an overhead measurement, which is also worth tracking.

#include <cstdio>

#include "bench_util.h"
#include "benchmark/benchmark.h"
#include "psc/consistency/general_consistency.h"
#include "psc/core/query_system.h"
#include "psc/counting/identity_instance.h"
#include "psc/counting/model_counter.h"
#include "psc/exec/thread_pool.h"
#include "psc/parser/parser.h"
#include "psc/util/combinatorics.h"

namespace psc {
namespace {

constexpr size_t kThreadCounts[] = {1, 2, 4, 8};

std::vector<Value> IntDomain(int64_t n) {
  std::vector<Value> domain;
  for (int64_t i = 0; i < n; ++i) domain.push_back(Value(i));
  return domain;
}

/// Two mutually complete projection views over disjoint constants: φ(D)
/// must be empty yet soundness demands 4+ facts, so no combination ever
/// freezes to a witness and the search scans the whole (capped)
/// combination space — the worst case the parallel search shards.
SourceCollection FreezeScanCollection() {
  auto view = ParseQuery("V(x) <- R2(x, y)");
  Relation low, high;
  for (int64_t i = 0; i < 8; ++i) {
    low.insert({Value(i)});
    high.insert({Value(i + 8)});
  }
  auto a = SourceDescriptor::Create("A", *view, low, Rational::One(),
                                    Rational(1, 2));
  auto b = SourceDescriptor::Create("B", *view, high, Rational::One(),
                                    Rational(1, 2));
  return *SourceCollection::Create({*a, *b});
}

SourceCollection CountingCollection() {
  Relation v1 = {{Value(int64_t{0})}, {Value(int64_t{1})}};
  Relation v2 = {{Value(int64_t{1})}, {Value(int64_t{2})}};
  auto s1 = SourceDescriptor::Create("S1", ConjunctiveQuery::Identity("R", 1),
                                     v1, Rational(1, 2), Rational(1, 2));
  auto s2 = SourceDescriptor::Create("S2", ConjunctiveQuery::Identity("R", 1),
                                     v2, Rational(1, 2), Rational(1, 2));
  return *SourceCollection::Create({*s1, *s2});
}

void SweepConsistency() {
  std::printf("--- canonical-freeze search (capped at 4096 combinations) "
              "---\n");
  std::printf("%8s | %10s | %8s | %8s\n", "threads", "time ms", "speedup",
              "verdict");
  const SourceCollection collection = FreezeScanCollection();
  double base_ms = 0.0;
  std::string base_verdict;
  for (const size_t threads : kThreadCounts) {
    GeneralConsistencyChecker::Options options;
    options.max_combinations = 4096;
    options.enable_exhaustive = false;
    options.threads = threads;
    const GeneralConsistencyChecker checker(options);
    bench_util::Stopwatch stopwatch;
    auto report = checker.Check(collection);
    const double ms = stopwatch.ElapsedMillis();
    if (!report.ok()) continue;
    const std::string verdict = ConsistencyVerdictToString(report->verdict);
    if (threads == 1) {
      base_ms = ms;
      base_verdict = verdict;
    }
    std::printf("%8zu | %10.2f | %7.2fx | %s%s\n", threads, ms,
                base_ms / std::max(ms, 1e-6), verdict.c_str(),
                verdict == base_verdict ? "" : "  !! MISMATCH");
  }
}

void SweepCounting() {
  std::printf("\n--- signature counter (domain 2048) ---\n");
  std::printf("%8s | %10s | %8s | %18s\n", "threads", "time ms", "speedup",
              "|poss(S)| digits");
  const SourceCollection collection = CountingCollection();
  auto instance = IdentityInstance::Create(collection, IntDomain(2048));
  if (!instance.ok()) return;
  double base_ms = 0.0;
  BigInt base_count;
  for (const size_t threads : kThreadCounts) {
    BinomialTable binomials;
    SignatureCounter counter(&*instance, &binomials);
    bench_util::Stopwatch stopwatch;
    Result<CountingOutcome> outcome = Status::Internal("unset");
    if (threads == 1) {
      outcome = counter.Count();
    } else {
      exec::ThreadPool pool(threads);
      outcome = counter.Count(uint64_t{1} << 26, &pool);
    }
    const double ms = stopwatch.ElapsedMillis();
    if (!outcome.ok()) continue;
    if (threads == 1) {
      base_ms = ms;
      base_count = outcome->world_count;
    }
    std::printf("%8zu | %10.2f | %7.2fx | %18zu%s\n", threads, ms,
                base_ms / std::max(ms, 1e-6),
                outcome->world_count.ToString().size(),
                outcome->world_count == base_count ? "" : "  !! MISMATCH");
  }
}

void SweepSampling() {
  std::printf("\n--- Monte-Carlo answering (20000 samples) ---\n");
  std::printf("%8s | %10s | %8s | %10s\n", "threads", "time ms", "speedup",
              "tuples");
  const SourceCollection collection = CountingCollection();
  auto query = ParseQuery("A(x) <- R(x)");
  double base_ms = 0.0;
  size_t reference_tuples = 0;
  for (const size_t threads : kThreadCounts) {
    QuerySystem::Options options;
    options.threads = threads;
    auto system = QuerySystem::Create(collection, options);
    if (!system.ok()) continue;
    bench_util::Stopwatch stopwatch;
    auto answer =
        system->AnswerMonteCarlo(*query, IntDomain(12), 20000, /*seed=*/11);
    const double ms = stopwatch.ElapsedMillis();
    if (!answer.ok()) continue;
    if (threads == 1) base_ms = ms;
    // Threads >= 2 share one counter-based stream layout; the thread-1
    // path keeps the historical stream, so only the multi-threaded rows
    // must agree exactly.
    if (threads == 2) reference_tuples = answer->confidences.size();
    const bool comparable = threads >= 2 && reference_tuples != 0;
    std::printf("%8zu | %10.2f | %7.2fx | %10zu%s\n", threads, ms,
                base_ms / std::max(ms, 1e-6), answer->confidences.size(),
                comparable && answer->confidences.size() != reference_tuples
                    ? "  !! MISMATCH"
                    : "");
  }
}

void BM_ParallelSignatureCount(benchmark::State& state) {
  const SourceCollection collection = CountingCollection();
  auto instance = IdentityInstance::Create(collection, IntDomain(1024));
  const size_t threads = static_cast<size_t>(state.range(0));
  exec::ThreadPool pool(threads);
  for (auto _ : state) {
    BinomialTable binomials;
    SignatureCounter counter(&*instance, &binomials);
    auto outcome =
        counter.Count(uint64_t{1} << 26, threads > 1 ? &pool : nullptr);
    benchmark::DoNotOptimize(outcome);
  }
}
BENCHMARK(BM_ParallelSignatureCount)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_ParallelFreezeSearch(benchmark::State& state) {
  const SourceCollection collection = FreezeScanCollection();
  GeneralConsistencyChecker::Options options;
  options.max_combinations = 512;
  options.enable_exhaustive = false;
  options.threads = static_cast<size_t>(state.range(0));
  const GeneralConsistencyChecker checker(options);
  for (auto _ : state) {
    auto report = checker.Check(collection);
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_ParallelFreezeSearch)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

}  // namespace
}  // namespace psc

int main(int argc, char** argv) {
  std::printf("=== parallel runtime scaling (hardware threads: %zu) ===\n",
              psc::exec::HardwareThreads());
  psc::SweepConsistency();
  psc::SweepCounting();
  psc::SweepSampling();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  psc::bench_util::EmitMetricsRecord("bench_parallel_scaling");
  return 0;
}
