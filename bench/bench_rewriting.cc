// E9 (extension) — view-based query answering (Information Manifold).
//
// The Related Work section notes that for sound views the Information
// Manifold algorithm computes exactly the certain answer. This experiment
// checks that property empirically — rewriting answers must lie inside
// Q(D) for every brute-forced possible world — and charts rewriting count
// and cost as the federation grows.

#include <cstdio>

#include "bench_util.h"
#include "benchmark/benchmark.h"
#include "psc/consistency/possible_worlds.h"
#include "psc/parser/parser.h"
#include "psc/rewriting/bucket_rewriter.h"
#include "psc/util/random.h"
#include "psc/util/string_util.h"
#include "psc/workload/ghcn.h"

namespace psc {
namespace {

/// A federation of fully sound (coverage < 1, error = 0) GHCN sources.
Result<std::pair<GhcnWorld, SourceCollection>> SoundFederation(
    int64_t stations, int64_t num_sources, uint64_t seed) {
  GhcnConfig config;
  config.num_stations = stations;
  config.start_year = 1990;
  config.end_year = 1990;
  GhcnGenerator generator(config, seed);
  GhcnWorld world = generator.GenerateTruth();
  std::vector<SourceDescriptor> sources;
  PSC_ASSIGN_OR_RETURN(SourceDescriptor catalog,
                       generator.MakeCatalogSource(world, "S0"));
  sources.push_back(std::move(catalog));
  const std::vector<std::string> countries = {"Canada", "US", "Mexico"};
  for (int64_t i = 0; i < num_sources; ++i) {
    PSC_ASSIGN_OR_RETURN(
        SourceDescriptor source,
        generator.MakeCountrySource(
            world, StrCat("S", i + 1),
            countries[static_cast<size_t>(i) % countries.size()],
            /*after_year=*/1900, /*coverage=*/0.7, /*error_rate=*/0.0));
    sources.push_back(std::move(source));
  }
  PSC_ASSIGN_OR_RETURN(SourceCollection collection,
                       SourceCollection::Create(std::move(sources)));
  return std::make_pair(std::move(world), std::move(collection));
}

ConjunctiveQuery CanadianQuery() {
  auto query = ParseQuery(
      "Ans(s, y, m, v) <- Temperature(s, y, m, v), "
      "Station(s, lat, lon, \"Canada\"), After(y, 1900)");
  return std::move(query).ValueOrDie();
}

void PrintTable() {
  std::printf(
      "=== E9: view-based answering (bucket rewriter over sound GHCN "
      "sources) ===\n");
  std::printf("%8s | %8s | %10s | %12s | %12s | %12s\n", "stations",
              "sources", "rewritings", "rewrite ms", "answer size",
              "subset of Q(truth)");
  for (const auto& [stations, num_sources] :
       std::vector<std::pair<int64_t, int64_t>>{
           {6, 1}, {6, 3}, {12, 3}, {12, 6}, {24, 9}}) {
    auto federation = SoundFederation(stations, num_sources, 2001);
    if (!federation.ok()) continue;
    const ConjunctiveQuery query = CanadianQuery();
    BucketRewriter rewriter(&federation->second);

    const bench_util::Stopwatch stopwatch;
    auto rewritings = rewriter.Rewrite(query);
    auto answer = rewriter.AnswerUsingViews(query);
    const double rewrite_ms = stopwatch.ElapsedMillis();
    if (!rewritings.ok() || !answer.ok()) {
      std::printf("  error: %s\n", rewritings.status().ToString().c_str());
      continue;
    }
    auto truth_answer = query.Evaluate(federation->first.truth);
    bool subset = truth_answer.ok();
    if (subset) {
      for (const Tuple& tuple : *answer) {
        if (truth_answer->count(tuple) == 0) {
          subset = false;
          break;
        }
      }
    }
    std::printf("%8lld | %8lld | %10zu | %12.3f | %12zu | %12s\n",
                static_cast<long long>(stations),
                static_cast<long long>(num_sources), rewritings->size(),
                rewrite_ms, answer->size(), subset ? "yes" : "NO (!)");
  }
  std::printf(
      "(shape: with sound views every rewritten answer is certain — a "
      "subset of Q applied to the hidden truth; rewriting count grows "
      "with same-country source overlap.)\n\n");
}

void BM_Rewrite(benchmark::State& state) {
  auto federation = SoundFederation(12, state.range(0), 7);
  const ConjunctiveQuery query = CanadianQuery();
  BucketRewriter rewriter(&federation->second);
  for (auto _ : state) {
    auto rewritings = rewriter.Rewrite(query);
    benchmark::DoNotOptimize(rewritings);
  }
}
BENCHMARK(BM_Rewrite)->Arg(1)->Arg(3)->Arg(6);

void BM_AnswerUsingViews(benchmark::State& state) {
  auto federation = SoundFederation(12, state.range(0), 7);
  const ConjunctiveQuery query = CanadianQuery();
  BucketRewriter rewriter(&federation->second);
  for (auto _ : state) {
    auto answer = rewriter.AnswerUsingViews(query);
    benchmark::DoNotOptimize(answer);
  }
}
BENCHMARK(BM_AnswerUsingViews)->Arg(3)->Arg(6);

}  // namespace
}  // namespace psc

int main(int argc, char** argv) {
  psc::PrintTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  psc::bench_util::EmitMetricsRecord("bench_rewriting");
  return 0;
}
