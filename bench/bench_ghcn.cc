// E7 — the motivating GHCN integration scenario, end to end.
//
// Sweeps the number of temperature sources and their coverage, measuring
// (a) the cost of validating a candidate world against every source
// (measure computation = view evaluation + set intersection), and (b) the
// cost and verdict of general consistency checking via canonical freezing.

#include <cstdio>

#include "bench_util.h"
#include "benchmark/benchmark.h"
#include "psc/consistency/general_consistency.h"
#include "psc/consistency/shrink_witness.h"
#include "psc/source/measures.h"
#include "psc/util/string_util.h"
#include "psc/workload/ghcn.h"

namespace psc {
namespace {

struct Federation {
  GhcnWorld world;
  SourceCollection collection;
};

Result<Federation> MakeFederation(int64_t stations, int64_t num_sources,
                                  double coverage, uint64_t seed) {
  GhcnConfig config;
  config.num_stations = stations;
  config.start_year = 1990;
  config.end_year = 1991;
  GhcnGenerator generator(config, seed);
  Federation federation{generator.GenerateTruth(), {}};
  std::vector<SourceDescriptor> sources;
  PSC_ASSIGN_OR_RETURN(SourceDescriptor catalog,
                       generator.MakeCatalogSource(federation.world, "S0"));
  sources.push_back(std::move(catalog));
  const std::vector<std::string> countries = {"Canada", "US", "Mexico"};
  for (int64_t i = 0; i < num_sources; ++i) {
    PSC_ASSIGN_OR_RETURN(
        SourceDescriptor source,
        generator.MakeCountrySource(
            federation.world, "S" + std::to_string(i + 1),
            countries[static_cast<size_t>(i) % countries.size()],
            /*after_year=*/1900, coverage, /*error_rate=*/0.1));
    sources.push_back(std::move(source));
  }
  PSC_ASSIGN_OR_RETURN(federation.collection,
                       SourceCollection::Create(std::move(sources)));
  return federation;
}

void PrintTable() {
  std::printf("=== E7: GHCN federation — validation and consistency ===\n");
  std::printf("%8s | %8s | %8s | %12s | %14s | %10s | %14s\n", "stations",
              "sources", "coverage", "validate ms", "consistency ms",
              "verdict", "|G| -> |D| (3.1)");
  for (const auto& [stations, num_sources, coverage] :
       std::vector<std::tuple<int64_t, int64_t, double>>{
           {6, 2, 0.8},
           {6, 4, 0.8},
           {12, 4, 0.8},
           {12, 8, 0.5},
           {24, 8, 0.5},
           {24, 16, 0.3}}) {
    auto federation = MakeFederation(stations, num_sources, coverage, 99);
    if (!federation.ok()) continue;

    bench_util::Stopwatch stopwatch;
    auto truth_possible =
        federation->collection.IsPossibleWorld(federation->world.truth);
    const double validate_ms = stopwatch.ElapsedMillis();
    if (!truth_possible.ok() || !*truth_possible) {
      std::printf("  !! ground truth rejected\n");
      continue;
    }

    GeneralConsistencyChecker::Options options;
    options.max_combinations = 4096;
    options.enable_exhaustive = false;
    const GeneralConsistencyChecker checker(options);
    stopwatch.Reset();
    auto report = checker.Check(federation->collection);
    const double consistency_ms = stopwatch.ElapsedMillis();
    // Lemma 3.1: shrink the (large) ground truth to a bounded witness.
    auto shrunk = ShrinkWitness(federation->collection,
                                federation->world.truth);
    const std::string shrink_note =
        shrunk.ok() ? StrCat(federation->world.truth.size(), " -> ",
                             shrunk->size())
                    : std::string("error");
    std::printf("%8lld | %8lld | %8.2f | %12.3f | %14.3f | %10s | %14s\n",
                static_cast<long long>(stations),
                static_cast<long long>(num_sources), coverage, validate_ms,
                report.ok()
                    ? consistency_ms
                    : -1.0,
                report.ok() ? ConsistencyVerdictToString(report->verdict)
                            : "error",
                shrink_note.c_str());
  }
  std::printf(
      "(shape: validation scales with Σ|vᵢ| and view-join cost; honest "
      "federations derived from a real world are always satisfiable, and "
      "the freeze strategy finds a witness without the exhaustive "
      "fallback.)\n\n");
}

void BM_ValidateTruth(benchmark::State& state) {
  auto federation = MakeFederation(state.range(0), 4, 0.8, 7);
  for (auto _ : state) {
    auto possible =
        federation->collection.IsPossibleWorld(federation->world.truth);
    benchmark::DoNotOptimize(possible);
  }
}
BENCHMARK(BM_ValidateTruth)->Arg(6)->Arg(12)->Arg(24);

void BM_ComputeMeasures(benchmark::State& state) {
  auto federation = MakeFederation(12, 4, 0.8, 7);
  const SourceDescriptor& source = federation->collection.source(1);
  for (auto _ : state) {
    auto measures = ComputeMeasures(source, federation->world.truth);
    benchmark::DoNotOptimize(measures);
  }
}
BENCHMARK(BM_ComputeMeasures);

void BM_GhcnGeneration(benchmark::State& state) {
  for (auto _ : state) {
    auto federation = MakeFederation(state.range(0), 4, 0.8, 7);
    benchmark::DoNotOptimize(federation);
  }
}
BENCHMARK(BM_GhcnGeneration)->Arg(12)->Arg(48);

}  // namespace
}  // namespace psc

int main(int argc, char** argv) {
  psc::PrintTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  psc::bench_util::EmitMetricsRecord("bench_ghcn");
  return 0;
}
