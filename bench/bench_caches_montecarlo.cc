// E8 — Section 6 cache/mirror application with Monte-Carlo confidence.
//
// (a) Estimation quality: exact-uniform world sampling converges to the
//     exact per-object confidences at the expected 1/√samples rate.
// (b) Scale: sampler construction and throughput on fleets up to
//     thousands of objects (tight bounds keep the feasible shape space
//     small; see web_caches example).

#include <cmath>
#include <cstdio>
#include <map>

#include "bench_util.h"
#include "benchmark/benchmark.h"
#include "psc/counting/confidence.h"
#include "psc/counting/world_sampler.h"
#include "psc/workload/cache_workload.h"

namespace psc {
namespace {

Result<CacheWorkload> SmallFleet() {
  CacheConfig config;
  config.num_objects = 12;
  config.num_caches = 3;
  config.coverage = 0.7;
  config.staleness = 0.15;
  config.seed = 31;
  return MakeCacheWorkload(config);
}

void PrintErrorTable() {
  std::printf(
      "=== E8a: Monte-Carlo confidence error vs sample count (12 objects, "
      "3 caches) ===\n");
  auto workload = SmallFleet();
  auto instance = IdentityInstance::CreateOverExtensions(workload->collection);
  auto exact = ComputeBaseFactConfidences(*instance);
  if (!exact.ok()) {
    std::printf("%s\n", exact.status().ToString().c_str());
    return;
  }
  auto sampler = WorldSampler::Create(&*instance);
  if (!sampler.ok()) return;
  std::printf("%9s | %12s | %12s | %14s\n", "samples", "max error",
              "mean error", "expected~1/sqrt(n)");
  Rng rng(17);
  std::map<Tuple, uint64_t> hits;
  uint64_t drawn = 0;
  for (const uint64_t target : {100u, 400u, 1600u, 6400u, 25600u}) {
    while (drawn < target) {
      const Database world = sampler->Sample(&rng);
      for (const Fact& fact : world.AllFacts()) ++hits[fact.tuple()];
      ++drawn;
    }
    double max_error = 0;
    double sum_error = 0;
    for (const TupleConfidence& entry : exact->entries) {
      const double estimate =
          static_cast<double>(hits[entry.tuple]) / static_cast<double>(drawn);
      const double error = std::fabs(estimate - entry.confidence);
      max_error = std::max(max_error, error);
      sum_error += error;
    }
    std::printf("%9llu | %12.5f | %12.5f | %14.5f\n",
                static_cast<unsigned long long>(drawn), max_error,
                sum_error / exact->entries.size(),
                0.5 / std::sqrt(static_cast<double>(drawn)));
  }
  std::printf("\n");
}

void PrintScaleTable() {
  std::printf(
      "=== E8b: exact-uniform sampler scale (2 caches, coverage 0.95, "
      "staleness 0.02) ===\n");
  std::printf("%9s | %10s | %12s | %16s\n", "objects", "shapes",
              "build ms", "samples/sec");
  for (const int64_t objects : {250, 500, 1000, 2000, 4000}) {
    CacheConfig config;
    config.num_objects = objects;
    config.num_caches = 2;
    config.coverage = 0.95;
    config.staleness = 0.02;
    config.seed = 31;
    auto workload = MakeCacheWorkload(config);
    if (!workload.ok()) continue;
    auto instance =
        IdentityInstance::CreateOverExtensions(workload->collection);
    if (!instance.ok()) continue;
    bench_util::Stopwatch stopwatch;
    auto sampler = WorldSampler::Create(&*instance, uint64_t{1} << 24);
    const double build_ms = stopwatch.ElapsedMillis();
    if (!sampler.ok()) {
      std::printf("%9lld | %s\n", static_cast<long long>(objects),
                  sampler.status().ToString().c_str());
      continue;
    }
    Rng rng(3);
    const int draws = 200;
    stopwatch.Reset();
    for (int i = 0; i < draws; ++i) {
      benchmark::DoNotOptimize(sampler->Sample(&rng));
    }
    const double sample_sec = stopwatch.ElapsedSeconds();
    std::printf("%9lld | %10zu | %12.2f | %16.1f\n",
                static_cast<long long>(objects), sampler->num_shapes(),
                build_ms, draws / sample_sec);
  }
  std::printf(
      "(shape: error decays ~1/sqrt(samples); sampler build cost tracks "
      "the feasible-shape count, which tight quality bounds keep small "
      "even for thousands of objects.)\n\n");
}

void BM_SampleWorld(benchmark::State& state) {
  CacheConfig config;
  config.num_objects = state.range(0);
  config.num_caches = 2;
  config.coverage = 0.95;
  config.staleness = 0.02;
  config.seed = 31;
  auto workload = MakeCacheWorkload(config);
  auto instance =
      IdentityInstance::CreateOverExtensions(workload->collection);
  auto sampler = WorldSampler::Create(&*instance, uint64_t{1} << 24);
  if (!sampler.ok()) {
    state.SkipWithError("sampler construction failed");
    return;
  }
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler->Sample(&rng));
  }
}
BENCHMARK(BM_SampleWorld)->Arg(250)->Arg(1000)->Arg(4000);

void BM_ExactConfidencesSmallFleet(benchmark::State& state) {
  auto workload = SmallFleet();
  auto instance =
      IdentityInstance::CreateOverExtensions(workload->collection);
  for (auto _ : state) {
    auto table = ComputeBaseFactConfidences(*instance);
    benchmark::DoNotOptimize(table);
  }
}
BENCHMARK(BM_ExactConfidencesSmallFleet);

}  // namespace
}  // namespace psc

int main(int argc, char** argv) {
  psc::PrintErrorTable();
  psc::PrintScaleTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  psc::bench_util::EmitMetricsRecord("bench_caches_montecarlo");
  return 0;
}
