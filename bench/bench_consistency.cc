// E2 — Theorem 3.2: CONSISTENCY is NP-complete in the size of the view
// extensions.
//
// The experiment charts the work of two exact deciders as instances grow:
//  * the 2^N brute-force subset filter (the NP guess-and-check procedure),
//  * the signature-group checker (still worst-case exponential, but
//    polynomial whenever the number of distinct signature groups is
//    bounded — random overlapping sources keep it small).
// The NP-hardness worst case is exercised separately with the Theorem 3.2
// reduction instances (E3), whose groups are forced to be singletons.

#include <cstdio>

#include "bench_util.h"
#include "benchmark/benchmark.h"
#include "psc/consistency/identity_consistency.h"
#include "psc/consistency/possible_worlds.h"
#include "psc/workload/random_collections.h"

namespace psc {
namespace {

std::vector<Value> IntDomain(int64_t n) {
  std::vector<Value> domain;
  for (int64_t i = 0; i < n; ++i) domain.push_back(Value(i));
  return domain;
}

void PrintTable() {
  std::printf(
      "=== E2: consistency deciders vs instance size (random identity "
      "collections, 3 sources) ===\n");
  std::printf("%9s | %12s | %14s | %14s | %12s\n", "universe",
              "consistent%", "counter ms/inst", "2^N oracle ms",
              "visited shapes");
  Rng rng(42);
  for (const int64_t universe : {4, 8, 12, 16, 20, 40, 80, 160}) {
    RandomIdentityConfig config;
    config.num_sources = 3;
    config.universe_size = universe;
    config.min_extension = universe / 2;
    config.max_extension = universe;
    const int trials = 20;
    int consistent = 0;
    uint64_t shapes = 0;
    double counter_ms = 0;
    double oracle_ms = -1;
    for (int t = 0; t < trials; ++t) {
      auto collection = MakeRandomIdentityCollection(config, &rng);
      if (!collection.ok()) continue;
      bench_util::Stopwatch stopwatch;
      auto report = CheckIdentityConsistency(*collection, uint64_t{1} << 28);
      counter_ms += stopwatch.ElapsedMillis();
      if (!report.ok()) {
        std::printf("  (budget exhausted at universe=%lld)\n",
                    static_cast<long long>(universe));
        continue;
      }
      consistent += report->consistent ? 1 : 0;
      shapes += report->visited_shapes;
      if (universe <= 20) {
        if (oracle_ms < 0) oracle_ms = 0;
        stopwatch.Reset();
        BruteForceWorldEnumerator oracle(&*collection, IntDomain(universe));
        auto count = oracle.CountPossibleWorlds();
        oracle_ms += stopwatch.ElapsedMillis();
        if (count.ok() && (*count > 0) != report->consistent) {
          std::printf("  !! disagreement with oracle\n");
        }
      }
    }
    if (oracle_ms >= 0) {
      std::printf("%9lld | %11d%% | %14.3f | %14.3f | %12.1f\n",
                  static_cast<long long>(universe),
                  100 * consistent / trials, counter_ms / trials,
                  oracle_ms / trials,
                  static_cast<double>(shapes) / trials);
    } else {
      std::printf("%9lld | %11d%% | %14.3f | %14s | %12.1f\n",
                  static_cast<long long>(universe),
                  100 * consistent / trials, counter_ms / trials, "2^N n/a",
                  static_cast<double>(shapes) / trials);
    }
  }
  std::printf(
      "(shape: the 2^N oracle explodes past ~20 facts; the group checker "
      "scales through it while agreeing on every decided instance.)\n\n");
}

void BM_IdentityConsistency(benchmark::State& state) {
  Rng rng(7);
  RandomIdentityConfig config;
  config.num_sources = 3;
  config.universe_size = state.range(0);
  config.min_extension = state.range(0) / 2;
  config.max_extension = state.range(0);
  auto collection = MakeRandomIdentityCollection(config, &rng);
  for (auto _ : state) {
    auto report = CheckIdentityConsistency(*collection, uint64_t{1} << 28);
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_IdentityConsistency)->Arg(8)->Arg(32)->Arg(128);

void BM_BruteForceOracle(benchmark::State& state) {
  Rng rng(7);
  RandomIdentityConfig config;
  config.num_sources = 3;
  config.universe_size = state.range(0);
  config.min_extension = state.range(0) / 2;
  config.max_extension = state.range(0);
  auto collection = MakeRandomIdentityCollection(config, &rng);
  const std::vector<Value> domain = IntDomain(state.range(0));
  for (auto _ : state) {
    BruteForceWorldEnumerator oracle(&*collection, domain);
    auto count = oracle.CountPossibleWorlds();
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_BruteForceOracle)->Arg(8)->Arg(12)->Arg(16)->Arg(20);

}  // namespace
}  // namespace psc

int main(int argc, char** argv) {
  psc::PrintTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  psc::bench_util::EmitMetricsRecord("bench_consistency");
  return 0;
}
